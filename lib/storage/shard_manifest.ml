(* Payload layout, version 2 (all little-endian u32):

     +0   magic "OAS2"
     +4   shard count K
     +8   K entries of (first_seq, num_seqs, symbols, gram_bytes)
     then the K gram bitsets, concatenated in entry order

   followed by the standard 16-byte integrity footer. Version-1
   manifests (magic "OASH", fixed 12-byte entries, no gram bitsets)
   are still read — their entries surface with empty [grams]. *)

let magic_v1 = 0x4853414F (* "OASH" *)
let magic = 0x3253414F (* "OAS2" *)
let filename = "manifest.dat"
let shard_dir dir i = Filename.concat dir (Printf.sprintf "shard%d" i)

type entry = {
  first_seq : int;
  num_seqs : int;
  symbols : int;
  grams : Bytes.t;
}

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt

let put_u32 buf v =
  if v < 0 || v > 0xFFFFFFFF then
    invalid_arg "Shard_manifest: field out of u32 range";
  Buffer.add_char buf (Char.chr (v land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF))

let get_u32 b off =
  Char.code (Bytes.get b off)
  lor (Char.code (Bytes.get b (off + 1)) lsl 8)
  lor (Char.code (Bytes.get b (off + 2)) lsl 16)
  lor (Char.code (Bytes.get b (off + 3)) lsl 24)

let write device entries =
  let k = Array.length entries in
  if k = 0 then invalid_arg "Shard_manifest.write: no entries";
  let next = ref 0 in
  Array.iter
    (fun e ->
      if e.first_seq <> !next || e.num_seqs < 1 then
        invalid_arg "Shard_manifest.write: entries not contiguous from 0";
      next := e.first_seq + e.num_seqs)
    entries;
  let buf = Buffer.create (8 + (16 * k)) in
  put_u32 buf magic;
  put_u32 buf k;
  Array.iter
    (fun e ->
      put_u32 buf e.first_seq;
      put_u32 buf e.num_seqs;
      put_u32 buf e.symbols;
      put_u32 buf (Bytes.length e.grams))
    entries;
  Array.iter (fun e -> Buffer.add_bytes buf e.grams) entries;
  Device.append device (Buffer.to_bytes buf);
  Footer.append device

let check_contiguous entries =
  let next = ref 0 in
  Array.iter
    (fun e ->
      if e.first_seq <> !next || e.num_seqs < 1 then
        corrupt "manifest: shard ranges not contiguous from sequence 0";
      next := e.first_seq + e.num_seqs)
    entries

let read_v1 b len =
  let k = get_u32 b 4 in
  if k < 1 || len <> 8 + (12 * k) then
    corrupt "manifest: claims %d shards but holds %d payload bytes" k len;
  Array.init k (fun i ->
      let off = 8 + (12 * i) in
      {
        first_seq = get_u32 b off;
        num_seqs = get_u32 b (off + 4);
        symbols = get_u32 b (off + 8);
        grams = Bytes.empty;
      })

let read_v2 b len =
  let k = get_u32 b 4 in
  if k < 1 || len < 8 + (16 * k) then
    corrupt "manifest: claims %d shards but holds %d payload bytes" k len;
  let gram_off = ref (8 + (16 * k)) in
  let entries =
    Array.init k (fun i ->
        let off = 8 + (16 * i) in
        let gram_len = get_u32 b (off + 12) in
        if !gram_off + gram_len > len then
          corrupt "manifest: shard %d gram bitset overruns the payload" i;
        let grams = Bytes.sub b !gram_off gram_len in
        gram_off := !gram_off + gram_len;
        {
          first_seq = get_u32 b off;
          num_seqs = get_u32 b (off + 4);
          symbols = get_u32 b (off + 8);
          grams;
        })
  in
  if !gram_off <> len then
    corrupt "manifest: %d trailing payload bytes" (len - !gram_off);
  entries

let read device =
  (match Footer.verify device with
  | Error msg -> corrupt "manifest: %s" msg
  | Ok _ -> ());
  let len = Device.length device - Footer.size in
  if len < 8 then corrupt "manifest: payload too short (%d bytes)" len;
  let b = Bytes.create len in
  Device.pread device ~off:0 ~buf:b;
  let m = get_u32 b 0 in
  let entries =
    if m = magic then read_v2 b len
    else if m = magic_v1 then read_v1 b len
    else corrupt "manifest: bad magic"
  in
  check_contiguous entries;
  entries

let save ~dir entries =
  let device = Device.file (Filename.concat dir filename) in
  Fun.protect
    ~finally:(fun () -> Device.close device)
    (fun () -> write device entries)

let load ~dir =
  let device = Device.open_file (Filename.concat dir filename) in
  Fun.protect
    ~finally:(fun () -> Device.close device)
    (fun () -> read device)

let exists ~dir = Sys.file_exists (Filename.concat dir filename)
