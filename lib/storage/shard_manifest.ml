(* Payload layout (all little-endian u32):

     +0   magic "OASH"
     +4   shard count K
     +8   K entries of (first_seq, num_seqs, symbols)

   followed by the standard 16-byte integrity footer. *)

let magic = 0x4853414F (* "OASH" *)
let filename = "manifest.dat"
let shard_dir dir i = Filename.concat dir (Printf.sprintf "shard%d" i)

type entry = { first_seq : int; num_seqs : int; symbols : int }

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt

let put_u32 buf v =
  if v < 0 || v > 0xFFFFFFFF then
    invalid_arg "Shard_manifest: field out of u32 range";
  Buffer.add_char buf (Char.chr (v land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF))

let get_u32 b off =
  Char.code (Bytes.get b off)
  lor (Char.code (Bytes.get b (off + 1)) lsl 8)
  lor (Char.code (Bytes.get b (off + 2)) lsl 16)
  lor (Char.code (Bytes.get b (off + 3)) lsl 24)

let write device entries =
  let k = Array.length entries in
  if k = 0 then invalid_arg "Shard_manifest.write: no entries";
  let next = ref 0 in
  Array.iter
    (fun e ->
      if e.first_seq <> !next || e.num_seqs < 1 then
        invalid_arg "Shard_manifest.write: entries not contiguous from 0";
      next := e.first_seq + e.num_seqs)
    entries;
  let buf = Buffer.create (8 + (12 * k)) in
  put_u32 buf magic;
  put_u32 buf k;
  Array.iter
    (fun e ->
      put_u32 buf e.first_seq;
      put_u32 buf e.num_seqs;
      put_u32 buf e.symbols)
    entries;
  Device.append device (Buffer.to_bytes buf);
  Footer.append device

let read device =
  (match Footer.verify device with
  | Error msg -> corrupt "manifest: %s" msg
  | Ok _ -> ());
  let len = Device.length device - Footer.size in
  if len < 8 then corrupt "manifest: payload too short (%d bytes)" len;
  let b = Bytes.create len in
  Device.pread device ~off:0 ~buf:b;
  if get_u32 b 0 <> magic then corrupt "manifest: bad magic";
  let k = get_u32 b 4 in
  if k < 1 || len <> 8 + (12 * k) then
    corrupt "manifest: claims %d shards but holds %d payload bytes" k len;
  let entries =
    Array.init k (fun i ->
        let off = 8 + (12 * i) in
        {
          first_seq = get_u32 b off;
          num_seqs = get_u32 b (off + 4);
          symbols = get_u32 b (off + 8);
        })
  in
  let next = ref 0 in
  Array.iter
    (fun e ->
      if e.first_seq <> !next || e.num_seqs < 1 then
        corrupt "manifest: shard ranges not contiguous from sequence 0";
      next := e.first_seq + e.num_seqs)
    entries;
  entries

let save ~dir entries =
  let device = Device.file (Filename.concat dir filename) in
  Fun.protect
    ~finally:(fun () -> Device.close device)
    (fun () -> write device entries)

let load ~dir =
  let device = Device.open_file (Filename.concat dir filename) in
  Fun.protect
    ~finally:(fun () -> Device.close device)
    (fun () -> read device)

let exists ~dir = Sys.file_exists (Filename.concat dir filename)
