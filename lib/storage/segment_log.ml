(* The sequence journal of the log-structured index: an append-only run
   of length-prefixed, CRC-guarded sequence records behind a small
   self-describing header.

     +0   magic "OASL"            (u32 LE)
     +4   format version          (u32 LE)
     +8   records...

   record = [u32 payload length][u32 CRC-32 of payload][payload]
   payload = [u32 |id|][id][u32 |description|][description]
             [u32 |codes|][codes]

   Each record is written as two device appends (prelude, then payload)
   so a crash between them leaves a {e torn} record — exactly the state
   recovery must truncate away. The same record stream, sealed with a
   {!Footer}, is a segment's [.seqs] component. *)

let magic = 0x4C53414F (* "OASL" *)
let format_version = 1
let header_bytes = 8

(* Records beyond this are assumed to be garbage lengths read out of a
   corrupt prelude, not real sequences. *)
let max_payload = 1 lsl 28

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt

let put_u32 buf v =
  if v < 0 || v > 0xFFFFFFFF then
    invalid_arg "Segment_log: field out of u32 range";
  Buffer.add_char buf (Char.chr (v land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF))

let get_u32 b off =
  Char.code (Bytes.get b off)
  lor (Char.code (Bytes.get b (off + 1)) lsl 8)
  lor (Char.code (Bytes.get b (off + 2)) lsl 16)
  lor (Char.code (Bytes.get b (off + 3)) lsl 24)

let create device =
  if Device.length device <> 0 then
    invalid_arg "Segment_log.create: device not empty";
  let buf = Buffer.create header_bytes in
  put_u32 buf magic;
  put_u32 buf format_version;
  Device.append device (Buffer.to_bytes buf);
  Device.sync device

let encode_payload s =
  let id = Bioseq.Sequence.id s in
  let desc = Bioseq.Sequence.description s in
  let codes = Bioseq.Sequence.codes s in
  let buf =
    Buffer.create (12 + String.length id + String.length desc + Bytes.length codes)
  in
  put_u32 buf (String.length id);
  Buffer.add_string buf id;
  put_u32 buf (String.length desc);
  Buffer.add_string buf desc;
  put_u32 buf (Bytes.length codes);
  Buffer.add_bytes buf codes;
  Buffer.to_bytes buf

exception Decode of string

let decode_payload ~alphabet b =
  let fail fmt = Printf.ksprintf (fun m -> raise (Decode m)) fmt in
  let len = Bytes.length b in
  let need pos n what =
    if pos + n > len then fail "record payload truncated reading %s" what
  in
  need 0 4 "id length";
  let id_len = get_u32 b 0 in
  need 4 id_len "id";
  let id = Bytes.sub_string b 4 id_len in
  let pos = 4 + id_len in
  need pos 4 "description length";
  let desc_len = get_u32 b pos in
  need (pos + 4) desc_len "description";
  let desc = Bytes.sub_string b (pos + 4) desc_len in
  let pos = pos + 4 + desc_len in
  need pos 4 "codes length";
  let codes_len = get_u32 b pos in
  need (pos + 4) codes_len "codes";
  if pos + 4 + codes_len <> len then fail "record payload has trailing bytes";
  let codes = Bytes.sub b (pos + 4) codes_len in
  match Bioseq.Sequence.of_codes ~alphabet ~id ~description:desc codes with
  | s -> s
  | exception Invalid_argument m -> fail "record holds invalid codes: %s" m

(* The prelude and the payload are separate appends on purpose: each is
   one crash boundary, so the matrix exercises the torn-record state. *)
let append device s =
  let payload = encode_payload s in
  let head = Buffer.create 8 in
  put_u32 head (Bytes.length payload);
  put_u32 head (Crc32.bytes payload);
  Device.append device (Buffer.to_bytes head);
  Device.append device payload

type state = Sealed | Torn | Corrupted

let state_name = function
  | Sealed -> "sealed"
  | Torn -> "torn"
  | Corrupted -> "corrupt"

type scan = {
  sequences : Bioseq.Sequence.t list;
  records : int;
  valid_bytes : int;
  state : state;
}

let scan ?(sealed = false) ~alphabet device =
  let total = Device.length device in
  let limit =
    if not sealed then total
    else
      match Footer.verify device with
      | Ok f -> f.Footer.payload_length
      | Error msg -> corrupt "sealed log: %s" msg
  in
  let finish ~damage sequences records valid_bytes =
    if sealed && damage <> Sealed then
      corrupt "sealed log damaged past its footer (%s at byte %d)"
        (state_name damage) valid_bytes;
    { sequences = List.rev sequences; records; valid_bytes; state = damage }
  in
  if limit < header_bytes then
    (* Crash during [create]: nothing durable yet. *)
    finish ~damage:Torn [] 0 0
  else begin
    let head = Bytes.create header_bytes in
    Device.pread device ~off:0 ~buf:head;
    if get_u32 head 0 <> magic then corrupt "log header: bad magic";
    let v = get_u32 head 4 in
    if v <> format_version then corrupt "log header: unsupported version %d" v;
    let rec loop acc records pos =
      if pos = limit then finish ~damage:Sealed acc records pos
      else if limit - pos < 8 then finish ~damage:Torn acc records pos
      else begin
        let prelude = Bytes.create 8 in
        Device.pread device ~off:pos ~buf:prelude;
        let len = get_u32 prelude 0 and crc = get_u32 prelude 4 in
        if len > max_payload then finish ~damage:Corrupted acc records pos
        else if limit - pos - 8 < len then finish ~damage:Torn acc records pos
        else begin
          let payload = Bytes.create len in
          Device.pread device ~off:(pos + 8) ~buf:payload;
          if Crc32.bytes payload <> crc then
            finish ~damage:Corrupted acc records pos
          else
            match decode_payload ~alphabet payload with
            | exception Decode _ -> finish ~damage:Corrupted acc records pos
            | s -> loop (s :: acc) (records + 1) (pos + 8 + len)
        end
      end
    in
    loop [] 0 header_bytes
  end

let write_all device sequences =
  create device;
  List.iter (append device) sequences;
  Device.sync device

let write_sealed device sequences =
  write_all device sequences;
  Footer.append device;
  Device.sync device

let rewrite fs ~name sequences =
  (* Truncation by rewrite: the surviving prefix goes to a temp file
     that atomically replaces the damaged journal, so a crash mid-way
     leaves either the damaged journal (recovered again on the next
     open) or the clean one — never less data than survived. *)
  let tmp = name ^ ".tmp" in
  let device = Vfs.create fs tmp in
  Fun.protect
    ~finally:(fun () -> Device.close device)
    (fun () -> write_all device sequences);
  Vfs.rename fs ~src:tmp ~dst:name
