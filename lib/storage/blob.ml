let save path payload =
  let device = Device.file path in
  Fun.protect
    ~finally:(fun () -> Device.close device)
    (fun () ->
      Device.append device payload;
      Footer.append device)

let load path =
  let device = Device.open_file path in
  Fun.protect
    ~finally:(fun () -> Device.close device)
    (fun () ->
      match Footer.verify device with
      | Error msg -> Error msg
      | Ok _ ->
        let len = Device.length device - Footer.size in
        let payload = Bytes.create len in
        Device.pread device ~off:0 ~buf:payload;
        Ok payload)

let exists = Sys.file_exists
