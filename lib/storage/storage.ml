(** Library root: the storage stack behind the paged suffix tree.

    {!Device} (backends + the {!Faulty} fault-injection combinator),
    {!Buffer_pool} (clock replacement + transient-error retries),
    {!Crc32}/{!Footer} (end-to-end integrity), {!Disk_tree} and
    {!External_build} (the paper's on-disk representation and its
    partitioned construction).

    Every I/O failure crossing this library's boundary is the typed
    {!Io_error} below, never a bare [Sys_error]. *)

module Io_error = Io_error
module Crc32 = Crc32
module Device = Device
module Faulty = Faulty
module Vfs = Vfs
module Buffer_pool = Buffer_pool
module Footer = Footer
module Blob = Blob
module Disk_tree = Disk_tree
module External_build = External_build
module Shard_manifest = Shard_manifest
module Segment_log = Segment_log
module Catalog = Catalog
module Live_index = Live_index

exception Io_error = Io_error.E
(** Alias of {!Io_error.E}: catch as [Storage.Io_error info]. *)
