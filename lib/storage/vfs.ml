(* A flat-namespace filesystem record, mirroring Device's
   record-of-operations design: the log-structured index only ever goes
   through this record, so the real directory backend, the in-memory
   store (whose contents survive a simulated crash), and the
   crash-injecting combinator compose freely. *)

type t = {
  create : string -> Device.t;
  open_ro : string -> Device.t;
  open_rw : string -> Device.t;
  exists : string -> bool;
  files : unit -> string list;
  rename : src:string -> dst:string -> unit;
  remove : string -> unit;
}

let create t name = t.create name
let open_ro t name = t.open_ro name
let open_rw t name = t.open_rw name
let exists t name = t.exists name
let files t = List.sort String.compare (t.files ())
let rename t ~src ~dst = t.rename ~src ~dst
let remove t name = t.remove name

let make ~create ~open_ro ~open_rw ~exists ~files ~rename ~remove =
  { create; open_ro; open_rw; exists; files; rename; remove }

let check_name name =
  if name = "" || String.contains name '/' || String.contains name '\\' then
    invalid_arg (Printf.sprintf "Vfs: invalid file name %S" name)

(* --- Real directory backend --- *)

let dir path =
  (try Unix.mkdir path 0o755 with
  | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  | Unix.Unix_error (e, _, _) ->
    Io_error.error ~path Io_error.Open (Unix.error_message e));
  let resolve name =
    check_name name;
    Filename.concat path name
  in
  let io name op f =
    try f () with Sys_error msg -> Io_error.error ~path:(resolve name) op msg
  in
  {
    create = (fun name -> Device.file (resolve name));
    open_ro = (fun name -> Device.open_file (resolve name));
    open_rw = (fun name -> Device.open_append (resolve name));
    exists = (fun name -> Sys.file_exists (resolve name));
    files =
      (fun () ->
        match Sys.readdir path with
        | entries -> Array.to_list entries
        | exception Sys_error msg -> Io_error.error ~path Io_error.Read msg);
    rename =
      (fun ~src ~dst ->
        (* POSIX rename: atomically replaces [dst] — the catalog-install
           primitive. *)
        io src Io_error.Write (fun () -> Sys.rename (resolve src) (resolve dst)));
    remove = (fun name -> io name Io_error.Write (fun () -> Sys.remove (resolve name)));
  }

(* --- In-memory backend --- *)

(* The store outlives the devices handed out over it: a crash kills the
   devices (see [with_crash]) but every completed write is still in the
   store, so a fresh [of_store] view models rebooting the machine and
   reopening the directory. *)

type entry = { mutable data : bytes; mutable len : int }
type store = (string, entry) Hashtbl.t

let store () : store = Hashtbl.create 16

let entry_device path entry ~writable =
  let ensure extra =
    let needed = entry.len + extra in
    if needed > Bytes.length entry.data then begin
      let ncap = max needed (max 64 (2 * Bytes.length entry.data)) in
      let ndata = Bytes.create ncap in
      Bytes.blit entry.data 0 ndata 0 entry.len;
      entry.data <- ndata
    end
  in
  Device.make
    ~length:(fun () -> entry.len)
    ~append:(fun data ->
      if not writable then invalid_arg "Device.append: device opened read-only";
      ensure (Bytes.length data);
      Bytes.blit data 0 entry.data entry.len (Bytes.length data);
      entry.len <- entry.len + Bytes.length data)
    ~pwrite:(fun ~off data ->
      if not writable then invalid_arg "Device.pwrite: device opened read-only";
      let len = Bytes.length data in
      if off < 0 || off + len > entry.len then
        invalid_arg "Device.pwrite: range outside the written region";
      Bytes.blit data 0 entry.data off len)
    ~pread:(fun ~off ~buf ->
      let want = Bytes.length buf in
      let avail = max 0 (min want (entry.len - off)) in
      if avail > 0 then Bytes.blit entry.data off buf 0 avail;
      if avail < want then Bytes.fill buf avail (want - avail) '\000')
    ~sync:(fun () -> ())
    ~close:(fun () -> ignore path)

let of_store (s : store) =
  let find op name =
    check_name name;
    match Hashtbl.find_opt s name with
    | Some e -> e
    | None -> Io_error.error ~path:name op "no such file"
  in
  {
    create =
      (fun name ->
        check_name name;
        let e = { data = Bytes.create 64; len = 0 } in
        Hashtbl.replace s name e;
        entry_device name e ~writable:true);
    open_ro = (fun name -> entry_device name (find Io_error.Open name) ~writable:false);
    open_rw = (fun name -> entry_device name (find Io_error.Open name) ~writable:true);
    exists =
      (fun name ->
        check_name name;
        Hashtbl.mem s name);
    files = (fun () -> Hashtbl.fold (fun name _ acc -> name :: acc) s []);
    rename =
      (fun ~src ~dst ->
        check_name dst;
        let e = find Io_error.Write src in
        Hashtbl.replace s dst e;
        Hashtbl.remove s src);
    remove =
      (fun name ->
        ignore (find Io_error.Write name);
        Hashtbl.remove s name);
  }

(* --- Crash combinator --- *)

let with_crash crash t =
  {
    create =
      (fun name ->
        (* Creating (or truncating) a file is itself a metadata write
           boundary: a crash here leaves the file absent. *)
        Faulty.crash_write_boundary crash;
        Faulty.wrap_crash crash (t.create name));
    open_ro =
      (fun name ->
        Faulty.crash_check_alive crash;
        Faulty.wrap_crash crash (t.open_ro name));
    open_rw =
      (fun name ->
        Faulty.crash_check_alive crash;
        Faulty.wrap_crash crash (t.open_rw name));
    exists =
      (fun name ->
        Faulty.crash_check_alive crash;
        t.exists name);
    files =
      (fun () ->
        Faulty.crash_check_alive crash;
        t.files ());
    rename =
      (fun ~src ~dst ->
        Faulty.crash_rename_boundary crash;
        t.rename ~src ~dst);
    remove =
      (fun name ->
        Faulty.crash_write_boundary crash;
        t.remove name);
  }
