(** External suffix-tree construction straight into the disk image —
    the paper's §3.4.1 pipeline after Hunt et al. (VLDB 2001):
    "constructs sub-trees stemming from fixed-length prefixes of each
    suffix in memory, by making one pass through the sequence data for
    each subtree ... Once the suffix tree has been constructed, we
    reorganize the disk-representation".

    Suffixes are partitioned by their first symbol; each partition's
    subtree is built in memory, serialized into the {!Disk_tree} format
    (whose internal file carries an explicit root directory precisely so
    that partitions can be emitted independently), and dropped before
    the next partition is built. Peak tree memory is therefore bounded
    by the largest partition instead of the whole index — the property
    that let the paper index data sets larger than RAM. (The sequence
    data itself is the in-memory {!Bioseq.Database}; at ~1 byte per
    symbol it is an order of magnitude smaller than the tree.)

    The output is byte-level readable by {!Disk_tree.open_} and
    semantically identical to serializing a monolithic
    {!Suffix_tree.Ukkonen.build} tree (verified by property tests; entry
    order differs, paths and positions do not). *)

val write :
  ?layout:Disk_tree.layout ->
  Bioseq.Database.t ->
  symbols:Device.t ->
  internal:Device.t ->
  leaves:Device.t ->
  unit
(** Devices must be empty. [layout] defaults to
    {!Disk_tree.Position_indexed}. *)

val max_partition_occurrences : Bioseq.Database.t -> int
(** Size (in suffix occurrences) of the largest first-symbol partition —
    the peak number of leaf occurrences resident during {!write}.
    Exposed for tests and capacity planning. *)
