type plan = {
  seed : int;
  warmup_ops : int;
  transient_read_prob : float;
  max_consecutive_transient : int;
  fail_after_ops : int option;
  torn_append_prob : float;
  bit_flip_prob : float;
}

let plan ?(seed = 0) ?(warmup_ops = 0) ?(transient_read_prob = 0.)
    ?(max_consecutive_transient = 1) ?fail_after_ops ?(torn_append_prob = 0.)
    ?(bit_flip_prob = 0.) () =
  if transient_read_prob < 0. || transient_read_prob > 1. then
    invalid_arg "Faulty.plan: transient_read_prob outside [0, 1]";
  if torn_append_prob < 0. || torn_append_prob > 1. then
    invalid_arg "Faulty.plan: torn_append_prob outside [0, 1]";
  if bit_flip_prob < 0. || bit_flip_prob > 1. then
    invalid_arg "Faulty.plan: bit_flip_prob outside [0, 1]";
  if max_consecutive_transient < 0 then
    invalid_arg "Faulty.plan: max_consecutive_transient must be >= 0";
  {
    seed;
    warmup_ops;
    transient_read_prob;
    max_consecutive_transient;
    fail_after_ops;
    torn_append_prob;
    bit_flip_prob;
  }

type stats = {
  reads : int;
  writes : int;
  transient_failures : int;
  torn_appends : int;
  bit_flips : int;
}

type handle = {
  plan : plan;
  rng : Random.State.t;
  mutable ops : int;
  mutable consecutive : int;
  mutable reads : int;
  mutable writes : int;
  mutable transient_failures : int;
  mutable torn_appends : int;
  mutable bit_flips : int;
}

let stats h =
  {
    reads = h.reads;
    writes = h.writes;
    transient_failures = h.transient_failures;
    torn_appends = h.torn_appends;
    bit_flips = h.bit_flips;
  }

let roll h prob = prob > 0. && Random.State.float h.rng 1.0 < prob

(* Every data operation ticks the op counter; faults are armed only
   after the warmup window, and a fail-after-N plan turns every
   subsequent operation into a permanent (non-transient) Io_error. *)
let tick h op =
  h.ops <- h.ops + 1;
  match h.plan.fail_after_ops with
  | Some n when h.ops > n ->
    Io_error.error ~transient:false op "injected permanent device failure"
  | _ -> ()

let armed h = h.ops > h.plan.warmup_ops

let wrap plan inner =
  let h =
    {
      plan;
      rng = Random.State.make [| plan.seed |];
      ops = 0;
      consecutive = 0;
      reads = 0;
      writes = 0;
      transient_failures = 0;
      torn_appends = 0;
      bit_flips = 0;
    }
  in
  let device =
    Device.make
      ~length:(fun () -> Device.length inner)
      ~append:(fun data ->
        tick h Io_error.Write;
        h.writes <- h.writes + 1;
        if armed h && roll h plan.torn_append_prob && Bytes.length data > 0 then begin
          (* Torn write: only a strict prefix reaches the device, as
             after a crash mid-append. *)
          let keep = Random.State.int h.rng (Bytes.length data) in
          h.torn_appends <- h.torn_appends + 1;
          Device.append inner (Bytes.sub data 0 keep)
        end
        else Device.append inner data)
      ~pwrite:(fun ~off data ->
        tick h Io_error.Write;
        h.writes <- h.writes + 1;
        Device.pwrite inner ~off data)
      ~pread:(fun ~off ~buf ->
        tick h Io_error.Read;
        h.reads <- h.reads + 1;
        if
          armed h
          && h.consecutive < plan.max_consecutive_transient
          && roll h plan.transient_read_prob
        then begin
          h.consecutive <- h.consecutive + 1;
          h.transient_failures <- h.transient_failures + 1;
          Io_error.error ~transient:true Io_error.Read
            "injected transient read failure"
        end;
        h.consecutive <- 0;
        Device.pread inner ~off ~buf;
        if armed h && roll h plan.bit_flip_prob && Bytes.length buf > 0 then begin
          let i = Random.State.int h.rng (Bytes.length buf) in
          let bit = Random.State.int h.rng 8 in
          h.bit_flips <- h.bit_flips + 1;
          Bytes.set buf i (Char.chr (Char.code (Bytes.get buf i) lxor (1 lsl bit)))
        end)
      ~sync:(fun () ->
        tick h Io_error.Flush;
        Device.sync inner)
      ~close:(fun () -> Device.close inner)
  in
  (device, h)

(* --- Simulated power loss --- *)

(* One [crash] value is shared by every device and filesystem handle of
   the simulated machine: when the budget runs out, the whole machine is
   dead, not just the device whose op crossed the line. *)
type crash = {
  write_budget : int; (* write boundaries allowed before power loss *)
  rename_budget : int; (* renames allowed before power loss *)
  mutable dead : bool;
  mutable write_ops : int;
  mutable rename_ops : int;
}

let make_crash ~write_budget ~rename_budget =
  { write_budget; rename_budget; dead = false; write_ops = 0; rename_ops = 0 }

let crash_after ~writes =
  if writes < 0 then invalid_arg "Faulty.crash_after: writes must be >= 0";
  make_crash ~write_budget:writes ~rename_budget:max_int

let crash_during_rename ~renames =
  if renames < 0 then
    invalid_arg "Faulty.crash_during_rename: renames must be >= 0";
  make_crash ~write_budget:max_int ~rename_budget:renames

let no_crash () = make_crash ~write_budget:max_int ~rename_budget:max_int
let crashed c = c.dead
let crash_write_count c = c.write_ops
let crash_rename_count c = c.rename_ops

let power_loss op = Io_error.error ~transient:false op "simulated power loss"
let crash_check_alive c = if c.dead then power_loss Io_error.Read

(* A write boundary either completes (budget left) or kills the machine
   before any byte reaches the backend — there is no partial effect, so
   torn states come from crashing {e between} the multiple appends a
   higher-level record performs. *)
let crash_write_boundary c =
  if c.dead then power_loss Io_error.Write;
  if c.write_ops >= c.write_budget then begin
    c.dead <- true;
    power_loss Io_error.Write
  end;
  c.write_ops <- c.write_ops + 1

let crash_rename_boundary c =
  crash_write_boundary c;
  if c.rename_ops >= c.rename_budget then begin
    c.dead <- true;
    power_loss Io_error.Write
  end;
  c.rename_ops <- c.rename_ops + 1

let wrap_crash c inner =
  Device.make
    ~length:(fun () ->
      crash_check_alive c;
      Device.length inner)
    ~append:(fun data ->
      crash_write_boundary c;
      Device.append inner data)
    ~pwrite:(fun ~off data ->
      crash_write_boundary c;
      Device.pwrite inner ~off data)
    ~pread:(fun ~off ~buf ->
      crash_check_alive c;
      Device.pread inner ~off ~buf)
    ~sync:(fun () ->
      (* A barrier is not itself a boundary: the in-memory store
         persists every completed write, so crash-after-sync and
         crash-before-sync are the same machine state. *)
      crash_check_alive c;
      Device.sync inner)
    ~close:(fun () ->
      (* Closing a dead device succeeds: recovery code unwinding from a
         simulated power loss must be able to release handles. *)
      if not c.dead then Device.close inner)
