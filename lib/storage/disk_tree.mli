(** The paper's on-disk suffix tree representation (§3.4).

    Three components, each on its own device, all accessed through one
    {!Buffer_pool}:

    - {b symbols}: the database concatenation, one byte per symbol,
      written sequentially in block-sized chunks;
    - {b internal nodes}: fixed 16-byte entries in level (BFS) order, so
      the internal children of any node are {e contiguous}. Fields:
      path depth (with a last-sibling flag bit), label start (a symbols
      pointer), first internal child index, first leaf child slot;
    - {b leaves}: one 4-byte entry per suffix, {e indexed by the
      suffix's start position} so no start pointer needs to be stored
      (§3.4: "the array index of a node indicates the relevant offset in
      the symbol array"). The entry is an explicit next-sibling chain
      link, since leaves cannot be clustered next to their parents.

    The paper's single first-child pointer is realized as the pair
    (first internal child, first leaf child): internal siblings are
    adjacent by construction while leaf siblings are chained, which is
    exactly the hybrid the paper describes.

    A leaf's incoming arc label starts at [slot + parent_depth] in the
    symbols component and runs to its sequence's terminator, so reading
    it requires no stored length.

    Two leaf layouts are supported, selected at write time and recorded
    in a small self-describing header at the start of the leaves
    component:

    - {!Position_indexed} — the paper's §3.4 scheme described above;
    - {!Clustered} — the alternative the paper says it was experimenting
      with (§4.5: "so that leaves are stored contiguously with the
      internal nodes"): leaf entries are appended in parent (BFS) order,
      each holding its suffix position plus a last-sibling flag, making
      a node's leaf children one sequential read. Same 4 bytes per
      entry; the Figure 8 ablation measures the hit-ratio difference. *)

type layout = Position_indexed | Clustered

val internal_entry_bytes : int
(** 16 *)

val leaf_entry_bytes : int
(** 4 *)

(** {1 Writing} *)

val write :
  ?layout:layout ->
  Suffix_tree.Tree.t ->
  symbols:Device.t ->
  internal:Device.t ->
  leaves:Device.t ->
  unit
(** Serialize a built tree ([layout] defaults to {!Position_indexed}).
    Devices must be empty. Each component is terminated by a
    self-describing {!Footer} (magic, format version, payload length,
    CRC-32 of the payload), written after every backfill so the checksum
    covers the final contents. *)

(** {1 Reading} *)

type t

type node
(** A traversal handle: either an internal node or a leaf occurrence. *)

(** How much of the image {!open_} verifies before returning:

    - [Off] — header magics only (footers are still parsed when present
      so payload lengths are right, but nothing is checked);
    - [Footer] — every component must carry a current-version footer
      whose length and CRC-32 match its contents: catches truncation,
      torn tail writes and bit rot at the cost of one sequential read
      per component;
    - [Full] — [Footer] plus the {!check} structural walk. *)
type verify = Off | Footer | Full

exception Corrupt of { component : string; message : string }
(** Raised by {!open_} when verification fails; [component] is
    ["symbols"], ["internal"] or ["leaves"]. *)

val open_ :
  ?verify:verify ->
  alphabet:Bioseq.Alphabet.t ->
  pool:Buffer_pool.t ->
  symbols:Device.t ->
  internal:Device.t ->
  leaves:Device.t ->
  unit ->
  t
(** Attach the three components to [pool] and return a reader. The leaf
    layout is read from the leaves-file header; raises
    [Invalid_argument] on a bad magic number and {!Corrupt} when the
    requested [verify] level (default [Off]) finds damage. *)

val layout : t -> layout

val of_tree :
  ?layout:layout ->
  ?block_size:int ->
  ?capacity:int ->
  Suffix_tree.Tree.t ->
  t * Buffer_pool.t
(** Convenience for tests and benchmarks: serialize to in-memory devices
    and open through a fresh pool ([block_size] defaults to 2048 — the
    paper's value — and [capacity] to 256 blocks). *)

val root : t -> node
val is_leaf : node -> bool

val iter_children : t -> node -> (node -> unit) -> unit
(** Call [f] on each child in stored (canonical) order without building
    a list: contiguous runs — internal sibling entries, clustered leaf
    runs — are decoded from a pinned page, one pin per page instead of
    one pool probe per word. At most one frame is pinned at any moment,
    and it is released before [iter_children] returns, so the callback
    may freely read through the pool (even with a two-frame pool). *)

val children : t -> node -> node list
(** List-building convenience over {!iter_children}; prefer the iterator
    on hot paths. *)

val label_start : t -> node -> int
val label_stop : t -> node -> int option
(** [None] for leaves: the arc runs to the sequence terminator
    (inclusive), which the caller discovers by reading symbols. *)

val label_end : t -> node -> int
(** Exclusive end of the incoming arc label for any non-root node. For a
    leaf this is its sequence's terminator position + 1, resolved by
    binary search over the terminator table scanned at open time — no
    per-call I/O, no [max_int] sentinel. Raises [Invalid_argument] on
    the root. *)

val node_depth : t -> node -> int option
(** Path depth for internal nodes, [None] for leaves. *)

val leaf_position : node -> int option
(** The suffix start position of a leaf occurrence. *)

val internal_count : t -> int
(** Number of internal-node entries (for instrumentation). *)

val symbol : t -> int -> int
(** Symbol at a global position, read through the buffer pool. *)

val data_length : t -> int
val terminator : t -> int

val iter_positions : t -> node -> (int -> unit) -> unit
(** Call [f] on every leaf occurrence position under a node without
    building lists; the traversal stack is scratch storage reused across
    calls, so steady-state emission allocates nothing. Order is
    unspecified (sort if you need it); not reentrant. Descends through
    the pool, counting I/O like any other access. *)

val io_stats : t -> int * int
(** Cumulative pool [(hits, misses)] summed over the reader's three
    components, for engine-level I/O accounting. *)

(** {1 Statistics} *)

type component = Symbols | Internal_nodes | Leaves

val component_name : component -> string
(** ["symbols"], ["internal"] or ["leaves"]. *)

val component_stats : t -> component -> Buffer_pool.stats

(** {1 Integrity} *)

type issue = { component : component; offset : int; message : string }
(** One inconsistency, located by the device byte offset of the
    offending word. *)

val check : ?max_issues:int -> t -> issue list
(** Defensive structural walk of the on-disk image: every internal
    entry's fields, sibling-run terminators, root-directory entries and
    leaf chains/runs are bounds-checked before being followed, and leaf
    chains are cycle-checked. Unlike {!validate}, [check] assumes
    nothing about the image and never crashes or loops on garbage
    pointers — it reports them. Returns at most [max_issues] (default
    100) issues; [[]] means structurally sound. *)

(**/**)

(** Internal plumbing shared with {!External_build}; not a public
    API. *)
module Private : sig
  type sink

  val make_sink :
    layout:layout ->
    internal:Device.t ->
    leaves:Device.t ->
    clustered_counter:int ref ->
    sink

  val serialize_root_child : sink -> Suffix_tree.Tree.node -> int
  val write_leaf_header : Device.t -> layout -> unit
  val reserve_position_leaves : Device.t -> int -> unit

  val write_internal_header : Device.t -> dir_count:int -> dir_cap:int -> int

  val backfill_directory_entry : Device.t -> int -> int -> unit
  val set_dir_count : Device.t -> int -> unit

  val append_footers :
    symbols:Device.t -> internal:Device.t -> leaves:Device.t -> unit
end

(**/**)

type size_report = {
  symbols_bytes : int;
  internal_bytes : int;
  leaves_bytes : int;
  total_bytes : int;
  bytes_per_symbol : float;  (** the §4.2 space-utilization metric *)
}

val size_report : t -> size_report

val validate : t -> (unit, string) result
(** Full integrity walk of the on-disk image: every arc label lies
    inside one sequence region, leaf arcs end at a terminator, internal
    nodes have at least two children with distinct first symbols, depths
    are consistent along paths, and the leaf occurrences cover every
    suffix position exactly once. O(index size); used by
    [oasis verify-index] and the tests. *)
