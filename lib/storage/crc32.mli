(** CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over bytes and devices.
    Checksums are unsigned 32-bit values in an OCaml [int]. *)

type state

val start : state

val feed : state -> bytes -> int -> int -> state
(** [feed s buf pos len] absorbs a chunk; raises [Invalid_argument] if
    the range lies outside [buf]. *)

val finish : state -> int

val bytes : bytes -> int
val string : string -> int

val of_device : ?length:int -> Device.t -> int
(** Checksum of the first [length] bytes of a device (the whole device
    by default), read in 64 KiB chunks. *)
