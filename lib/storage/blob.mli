(** Footer-sealed opaque blob files.

    A one-payload file format for small sidecar artifacts that ride
    along an index directory — e.g. the serialized q-gram profile
    ([qgram.prf], DESIGN.md §2k). The payload is opaque bytes; the file
    carries the standard {!Footer} (version + length + CRC-32) so
    truncation and bit rot surface at load time instead of as garbage
    handed to the deserializer. *)

val save : string -> Bytes.t -> unit
(** [save path payload] writes [payload] sealed with a footer,
    replacing any existing file at [path]. *)

val load : string -> (Bytes.t, string) result
(** Verify the footer and return the payload; [Error] describes the
    damage (missing footer, CRC mismatch, truncation). Raises
    {!Io_error.E} when the file cannot be opened at all. *)

val exists : string -> bool
