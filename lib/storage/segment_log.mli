(** The append-only sequence journal of the log-structured index.

    A log is a small self-describing header followed by length-prefixed,
    CRC-32-guarded sequence records. Appends go to the live journal
    (tail of the index); the identical record stream sealed with a
    {!Footer} is a segment's [.seqs] component.

    Each record is written as two device appends — prelude
    [length | CRC], then payload — so a crash between them leaves a
    {e torn} record. {!scan} tolerates exactly that: it returns the
    valid prefix and reports where (and how) the log stops being valid.
    A torn or corrupt tail is normal after a crash and is truncated by
    {!rewrite}; only a damaged {e header} (wrong magic or version) is
    unrecoverable and raises {!Corrupt}. *)

exception Corrupt of string
(** The log cannot be interpreted at all: bad header magic, unsupported
    format version, or a sealed log whose footer or interior is
    damaged. *)

val create : Device.t -> unit
(** Write the log header to an empty device and sync. Raises
    [Invalid_argument] when the device is not empty. *)

val append : Device.t -> Bioseq.Sequence.t -> unit
(** Append one record (two device appends, no sync — callers sync once
    per batch as their durability barrier). *)

(** How a scan ended:
    - [Sealed] — every byte up to the limit parsed as valid records;
    - [Torn] — the log stops mid-record at its tail (a crash mid-append;
      normal, truncated by recovery);
    - [Corrupted] — a complete-looking record fails its CRC or decode (a
      crashed prelude whose length lied, or bit rot). *)
type state = Sealed | Torn | Corrupted

val state_name : state -> string
(** ["sealed"], ["torn"] or ["corrupt"]. *)

type scan = {
  sequences : Bioseq.Sequence.t list;  (** the valid prefix, in order *)
  records : int;
  valid_bytes : int;  (** header plus all complete records *)
  state : state;
}

val scan : ?sealed:bool -> alphabet:Bioseq.Alphabet.t -> Device.t -> scan
(** Read the valid prefix. With [sealed:true] (default [false]) the
    record region is delimited by a verified {!Footer} and any damage
    {e inside} it raises {!Corrupt} — sealed segments do not tear. *)

val write_all : Device.t -> Bioseq.Sequence.t list -> unit
(** Header plus records onto an empty device, one sync at the end. *)

val write_sealed : Device.t -> Bioseq.Sequence.t list -> unit
(** {!write_all} plus the {!Footer} seal — a segment [.seqs]
    component. *)

val rewrite : Vfs.t -> name:string -> Bioseq.Sequence.t list -> unit
(** Atomically replace log [name] with one holding exactly [sequences]
    (write to [name ^ ".tmp"], rename): how recovery truncates a
    torn or corrupt tail without a device-level truncate. *)
