(** Byte-addressable storage devices backing the paged suffix tree.

    Two backends: an in-memory store (used by the benchmarks, where
    "I/O" is counted rather than performed) and a real file. Devices are
    written by appending during index construction and read randomly at
    query time. *)

type t

val in_memory : unit -> t

val file : string -> t
(** Opens (creating or truncating) [path] for read/write. *)

val open_file : string -> t
(** Opens an existing file read-only; {!append} raises. *)

val length : t -> int

val append : t -> bytes -> unit

val pwrite : t -> off:int -> bytes -> unit
(** Overwrite bytes inside the already-written region (used to backfill
    reserved headers and directories during external construction).
    Raises [Invalid_argument] if the range extends past {!length} or the
    device is read-only. *)

val pread : t -> off:int -> buf:bytes -> unit
(** Fill all of [buf] from offset [off]; bytes past end-of-device are
    zero. *)

val close : t -> unit
(** Flush and release; in-memory devices keep their contents. *)
