(** Byte-addressable storage devices backing the paged suffix tree.

    A device is a record of operations, so backends and combinators
    compose: the built-in backends are an in-memory store (used by the
    benchmarks, where "I/O" is counted rather than performed) and a real
    file, and {!Faulty} wraps any device with an injected fault plan.
    Devices are written by appending during index construction and read
    randomly at query time.

    File-backed devices report failures as the typed
    {!Io_error.E} (re-exported as [Storage.Io_error]) carrying the path
    and operation, never as a bare [Sys_error]. *)

type t

val in_memory : unit -> t

val file : string -> t
(** Opens (creating or truncating) [path] for read/write. Raises
    {!Io_error.E} (op [Open]) when the path cannot be created. *)

val open_file : string -> t
(** Opens an existing file read-only; {!append} raises. Raises
    {!Io_error.E} (op [Open]) on a missing path or permission denial. *)

val open_append : string -> t
(** Opens [path] read/write {e without truncating}: existing contents
    are kept and {!append} continues past them (used to reopen the
    journal after recovery). Creates the file when missing. *)

val make :
  length:(unit -> int) ->
  append:(bytes -> unit) ->
  pwrite:(off:int -> bytes -> unit) ->
  pread:(off:int -> buf:bytes -> unit) ->
  sync:(unit -> unit) ->
  close:(unit -> unit) ->
  t
(** Build a device from raw operations — the hook used by combinators
    such as {!Faulty} (and available for future ones: metrics,
    encryption, remote blocks). *)

val length : t -> int

val append : t -> bytes -> unit

val pwrite : t -> off:int -> bytes -> unit
(** Overwrite bytes inside the already-written region (used to backfill
    reserved headers and directories during external construction).
    Raises [Invalid_argument] if the range extends past {!length} or the
    device is read-only. *)

val pread : t -> off:int -> buf:bytes -> unit
(** Fill all of [buf] from offset [off]; bytes past end-of-device are
    zero. *)

val sync : t -> unit
(** Write barrier: everything appended or overwritten before the call is
    flushed to the backend before it returns. A no-op for in-memory
    devices; for files any deferred write failure (e.g. ENOSPC) raises
    {!Io_error.E} (op [Flush]) here instead of at {!close}. *)

val close : t -> unit
(** Flush and release; in-memory devices keep their contents. A dirty
    file device is flushed {e explicitly} first and any failure (e.g.
    ENOSPC) raises {!Io_error.E} (op [Flush]) after the channels are
    released — a partially written index cannot look successfully
    built. *)
