(* Self-describing integrity footer, appended to each index component
   after construction:

     offset  field
     +0      magic "OASF" (little-endian u32)
     +4      footer format version (u32)
     +8      payload length in bytes (u32) — everything before the footer
     +12     CRC-32 of the payload (u32)

   16 bytes total, so the footer never splits a 16-byte-aligned entry.
   A truncated component loses its tail — i.e. the footer itself — so
   truncation shows up as a missing footer; payload corruption shows up
   as a CRC mismatch. *)

let magic = 0x4653414F (* "OASF" *)
let current_version = 1
let size = 16

type t = { version : int; payload_length : int; crc : int }

let put_u32 buf v =
  Buffer.add_char buf (Char.chr (v land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF))

let get_u32 b off =
  Char.code (Bytes.get b off)
  lor (Char.code (Bytes.get b (off + 1)) lsl 8)
  lor (Char.code (Bytes.get b (off + 2)) lsl 16)
  lor (Char.code (Bytes.get b (off + 3)) lsl 24)

let append ?(version = current_version) device =
  let payload_length = Device.length device in
  let crc = Crc32.of_device ~length:payload_length device in
  let buf = Buffer.create size in
  put_u32 buf magic;
  put_u32 buf version;
  put_u32 buf payload_length;
  put_u32 buf crc;
  Device.append device (Buffer.to_bytes buf)

let read device =
  let len = Device.length device in
  if len < size then None
  else begin
    let b = Bytes.create size in
    Device.pread device ~off:(len - size) ~buf:b;
    if get_u32 b 0 <> magic then None
    else
      Some
        { version = get_u32 b 4; payload_length = get_u32 b 8; crc = get_u32 b 12 }
  end

let verify device =
  match read device with
  | None ->
    Error
      "missing integrity footer (component truncated, or written before \
       footers existed)"
  | Some f ->
    if f.version <> current_version then
      Error
        (Printf.sprintf "unsupported footer version %d (expected %d)" f.version
           current_version)
    else if f.payload_length <> Device.length device - size then
      Error
        (Printf.sprintf
           "footer claims %d payload bytes but the component holds %d"
           f.payload_length
           (Device.length device - size))
    else begin
      let crc = Crc32.of_device ~length:f.payload_length device in
      if crc <> f.crc then
        Error
          (Printf.sprintf "CRC mismatch: footer 0x%08x, contents 0x%08x" f.crc
             crc)
      else Ok f
    end
