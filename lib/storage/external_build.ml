let max_partition_occurrences db =
  let buckets, short =
    Suffix_tree.Partitioned.partitions ~prefix_len:1 db
  in
  assert (short = []);
  Array.fold_left (fun acc b -> max acc (List.length b)) 0 buckets

let write ?(layout = Disk_tree.Position_indexed) db ~symbols ~internal ~leaves =
  if
    Device.length symbols <> 0 || Device.length internal <> 0
    || Device.length leaves <> 0
  then invalid_arg "External_build.write: devices must be empty";
  let data_len = Bioseq.Database.data_length db in
  Device.append symbols (Bytes.sub (Bioseq.Database.data db) 0 data_len);
  Disk_tree.Private.write_leaf_header leaves layout;
  (match layout with
  | Disk_tree.Position_indexed ->
    Disk_tree.Private.reserve_position_leaves leaves data_len
  | Disk_tree.Clustered -> ());
  (* One first-symbol partition per alphabet code plus the terminator;
     each becomes at most one root child. *)
  let dir_cap =
    Bioseq.Alphabet.size (Bioseq.Database.alphabet db) + 1
  in
  ignore
    (Disk_tree.Private.write_internal_header internal ~dir_count:0 ~dir_cap);
  let buckets, short =
    Suffix_tree.Partitioned.partitions ~prefix_len:1 db
  in
  assert (short = []);
  let clustered_counter = ref 0 in
  let sink =
    Disk_tree.Private.make_sink ~layout ~internal ~leaves ~clustered_counter
  in
  let dir_next = ref 0 in
  Array.iter
    (fun positions ->
      if positions <> [] then begin
        (* Build this partition's subtree, serialize it, drop it. *)
        let mini = Suffix_tree.Tree.create db in
        List.iter (Suffix_tree.Tree.insert_suffix_naive mini) positions;
        List.iter
          (fun child ->
            let entry = Disk_tree.Private.serialize_root_child sink child in
            Disk_tree.Private.backfill_directory_entry internal !dir_next entry;
            incr dir_next)
          (Suffix_tree.Tree.children (Suffix_tree.Tree.root mini))
      end)
    buckets;
  Disk_tree.Private.set_dir_count internal !dir_next;
  Disk_tree.Private.append_footers ~symbols ~internal ~leaves
