(** Typed storage I/O failures.

    Every failure crossing the storage boundary is reported as {!E}
    rather than a bare [Sys_error], carrying the device path (when
    known), the operation that failed, and whether the failure is
    {e transient} — retrying a transient failure may succeed (and
    {!Buffer_pool} does exactly that), while a permanent one will not.

    Re-exported at the library root as [Storage.Io_error]. *)

type op = Open | Read | Write | Flush | Close

type info = {
  path : string option;
  op : op;
  transient : bool;
  detail : string;
}

exception E of info

val op_name : op -> string

val to_string : info -> string
(** One-line human-readable rendering (used by the CLI). *)

val error : ?path:string -> ?transient:bool -> op -> string -> 'a
(** Raise {!E}. [transient] defaults to [false]. *)
