type stats = { hits : int; misses : int; retries : int; failures : int }

type retry = { attempts : int; backoff : float; multiplier : float }

let no_retry = { attempts = 1; backoff = 0.; multiplier = 2. }
let default_retry = { attempts = 4; backoff = 0.001; multiplier = 2. }

type handle = {
  id : int;
  device : Device.t;
  name : string;
  mutable hits : int;
  mutable misses : int;
  mutable retries : int;
  mutable failures : int;
}

type frame = {
  buf : bytes;
  mutable owner : (int * int) option; (* (handle id, block index) *)
  mutable referenced : bool;
}

type t = {
  block_size : int;
  mutable retry : retry;
  frames : frame array;
  table : (int * int, int) Hashtbl.t; (* (handle id, block) -> frame index *)
  mutable hand : int;
  mutable handles : handle list;
  mutable next_id : int;
}

let create ~block_size ~capacity =
  if block_size <= 0 || block_size mod 16 <> 0 then
    invalid_arg "Buffer_pool.create: block_size must be a positive multiple of 16";
  if capacity <= 0 then invalid_arg "Buffer_pool.create: capacity must be positive";
  {
    block_size;
    retry = no_retry;
    frames =
      Array.init capacity (fun _ ->
          { buf = Bytes.create block_size; owner = None; referenced = false });
    table = Hashtbl.create (2 * capacity);
    hand = 0;
    handles = [];
    next_id = 0;
  }

let block_size t = t.block_size
let capacity t = Array.length t.frames

let set_retry t retry =
  if retry.attempts < 1 then
    invalid_arg "Buffer_pool.set_retry: attempts must be >= 1";
  if retry.backoff < 0. || retry.multiplier < 1. then
    invalid_arg "Buffer_pool.set_retry: backoff must be >= 0 and multiplier >= 1";
  t.retry <- retry

let retry_policy t = t.retry

let attach t ~name device =
  let h =
    {
      id = t.next_id;
      device;
      name;
      hits = 0;
      misses = 0;
      retries = 0;
      failures = 0;
    }
  in
  t.next_id <- t.next_id + 1;
  t.handles <- h :: t.handles;
  h

(* Clock sweep: advance the hand, clearing reference bits, until an
   unreferenced frame is found. *)
let victim t =
  let n = Array.length t.frames in
  let rec sweep () =
    let idx = t.hand in
    let frame = t.frames.(idx) in
    t.hand <- (t.hand + 1) mod n;
    if frame.referenced then begin
      frame.referenced <- false;
      sweep ()
    end
    else (idx, frame)
  in
  sweep ()

(* Read one block, retrying transient Io_errors with exponential
   backoff. Permanent errors and exhausted budgets count as a failure
   and propagate to the caller. *)
let pread_with_retry t h ~off ~buf =
  let rec go attempt sleep =
    try Device.pread h.device ~off ~buf
    with Io_error.E info when info.Io_error.transient && attempt < t.retry.attempts ->
      h.retries <- h.retries + 1;
      if sleep > 0. then Unix.sleepf sleep;
      go (attempt + 1) (sleep *. t.retry.multiplier)
  in
  try go 1 t.retry.backoff
  with e ->
    h.failures <- h.failures + 1;
    raise e

let load t h block =
  let key = (h.id, block) in
  match Hashtbl.find_opt t.table key with
  | Some idx ->
    h.hits <- h.hits + 1;
    let frame = t.frames.(idx) in
    frame.referenced <- true;
    frame.buf
  | None ->
    h.misses <- h.misses + 1;
    let idx, frame = victim t in
    (match frame.owner with
    | Some old_key ->
      (* Blocks are read-only: no write-back needed. *)
      Hashtbl.remove t.table old_key
    | None -> ());
    (* Detach the frame before the read so a failing device cannot
       leave a frame that claims an owner the table no longer maps. *)
    frame.owner <- None;
    pread_with_retry t h ~off:(block * t.block_size) ~buf:frame.buf;
    frame.owner <- Some key;
    frame.referenced <- true;
    Hashtbl.replace t.table key idx;
    frame.buf

let read_byte t h off =
  let buf = load t h (off / t.block_size) in
  Char.code (Bytes.get buf (off mod t.block_size))

let read_u32 t h off =
  if off land 3 <> 0 then invalid_arg "Buffer_pool.read_u32: unaligned offset";
  let buf = load t h (off / t.block_size) in
  let base = off mod t.block_size in
  Char.code (Bytes.get buf base)
  lor (Char.code (Bytes.get buf (base + 1)) lsl 8)
  lor (Char.code (Bytes.get buf (base + 2)) lsl 16)
  lor (Char.code (Bytes.get buf (base + 3)) lsl 24)

let stats h =
  { hits = h.hits; misses = h.misses; retries = h.retries; failures = h.failures }

let hit_ratio (s : stats) =
  let total = s.hits + s.misses in
  if total = 0 then 1.0 else float_of_int s.hits /. float_of_int total

let reset_stats t =
  List.iter
    (fun h ->
      h.hits <- 0;
      h.misses <- 0;
      h.retries <- 0;
      h.failures <- 0)
    t.handles

let drop_all t =
  reset_stats t;
  Hashtbl.reset t.table;
  Array.iter
    (fun frame ->
      frame.owner <- None;
      frame.referenced <- false)
    t.frames;
  t.hand <- 0
