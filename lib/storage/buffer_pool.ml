type stats = { hits : int; misses : int; retries : int; failures : int }

type retry = { attempts : int; backoff : float; multiplier : float }

let no_retry = { attempts = 1; backoff = 0.; multiplier = 2. }
let default_retry = { attempts = 4; backoff = 0.001; multiplier = 2. }

(* A block's identity is packed into one immediate int so the frame
   table never boxes a key: handle id in the top bits, block index in
   the low 40 (a 2048-byte-block device would have to exceed 2 PiB to
   overflow them). [-1] means "no owner". *)
let block_bits = 40
let pack_key ~id ~block = (id lsl block_bits) lor block
let no_key = -1

type handle = {
  id : int;
  device : Device.t;
  name : string;
  mutable hits : int;
  mutable misses : int;
  mutable retries : int;
  mutable failures : int;
  (* Last block this handle touched: sequential runs (symbol labels,
     contiguous entry runs, clustered leaves) revalidate it with one
     array load instead of a table probe. Validity is checked against
     the frame's current owner key, so eviction invalidates it for
     free. *)
  mutable memo_key : int;
  mutable memo_frame : int;
}

(* Observability hooks (Obs metrics + optional trace sink). [None] —
   the default — costs one pointer compare on the lookup path. The
   storage layer cannot see [Oasis.Instrument] (it sits below it), so
   the pool carries its own bundle; the CLI registers it in the same
   registry as the engine's metrics. *)
type obs = {
  probe_length : Obs.Metric.histogram;
      (* frame-table probe steps per (non-memo) lookup *)
  evictions : Obs.Metric.counter;
  pin_events : Obs.Metric.counter;
  trace : Obs.Trace.t option;
}

type t = {
  block_size : int;
  mutable retry : retry;
  (* Struct-of-arrays frame metadata: parallel to [bufs]. *)
  bufs : bytes array;
  keys : int array; (* packed owner key per frame, [no_key] = free *)
  referenced : bool array; (* clock second-chance bits *)
  pins : int array; (* pin counts; pinned frames are never victims *)
  (* Open-addressed frame table: linear probing, backward-shift
     deletion, fibonacci hashing. [tbl_keys.(i) = 0] means empty,
     otherwise it stores [key + 1]; [tbl_frames.(i)] is the frame. *)
  tbl_keys : int array;
  tbl_frames : int array;
  tbl_mask : int;
  tbl_shift : int;
  mutable hand : int;
  mutable handles : handle list;
  mutable next_id : int;
  (* Pool-level instrumentation: every table probe step and every access
     the per-handle memo short-circuited. *)
  mutable probes : int;
  mutable memo_hits : int;
  mutable obs : obs option;
}

let create ~block_size ~capacity =
  if block_size <= 0 || block_size mod 16 <> 0 then
    invalid_arg "Buffer_pool.create: block_size must be a positive multiple of 16";
  if capacity <= 0 then invalid_arg "Buffer_pool.create: capacity must be positive";
  (* Power-of-two table at least 4x the frame count: at most a quarter
     full, so probe chains stay short through any eviction churn. *)
  let tbl_size =
    let rec grow n = if n >= 4 * capacity then n else grow (2 * n) in
    grow 8
  in
  let tbl_bits =
    let rec bits n acc = if n = 1 then acc else bits (n lsr 1) (acc + 1) in
    bits tbl_size 0
  in
  {
    block_size;
    retry = no_retry;
    bufs = Array.init capacity (fun _ -> Bytes.create block_size);
    keys = Array.make capacity no_key;
    referenced = Array.make capacity false;
    pins = Array.make capacity 0;
    tbl_keys = Array.make tbl_size 0;
    tbl_frames = Array.make tbl_size 0;
    tbl_mask = tbl_size - 1;
    tbl_shift = 63 - tbl_bits;
    hand = 0;
    handles = [];
    next_id = 0;
    probes = 0;
    memo_hits = 0;
    obs = None;
  }

let obs ?registry ?trace () =
  let registry =
    match registry with Some r -> r | None -> Obs.Registry.create ()
  in
  {
    probe_length = Obs.Registry.histogram registry "pool.probe_length";
    evictions = Obs.Registry.counter registry "pool.evictions";
    pin_events = Obs.Registry.counter registry "pool.pin_events";
    trace;
  }

let set_obs t obs = t.obs <- obs

let block_size t = t.block_size
let capacity t = Array.length t.bufs

let set_retry t retry =
  if retry.attempts < 1 then
    invalid_arg "Buffer_pool.set_retry: attempts must be >= 1";
  if retry.backoff < 0. || retry.multiplier < 1. then
    invalid_arg "Buffer_pool.set_retry: backoff must be >= 0 and multiplier >= 1";
  t.retry <- retry

let retry_policy t = t.retry

let attach t ~name device =
  let h =
    {
      id = t.next_id;
      device;
      name;
      hits = 0;
      misses = 0;
      retries = 0;
      failures = 0;
      memo_key = no_key;
      memo_frame = 0;
    }
  in
  t.next_id <- t.next_id + 1;
  t.handles <- h :: t.handles;
  h

(* ------------------------------------------------------------------ *)
(* Open-addressed frame table.                                          *)
(* ------------------------------------------------------------------ *)

(* Fibonacci hashing: multiply by 2^63 / phi and keep the top bits.
   Packed keys are dense in both fields, which this mixes well. *)
let[@inline] slot_of_key t key = (key * 0x4F1BBCDCBFA53E0B) lsr t.tbl_shift

(* Frame holding [key], or -1. The probe loop is a top-level function:
   an inner [let rec] would close over [t] and allocate ~5 words on
   every probe — this is the pool's hottest path after the memo. *)
let rec tbl_find_from t stored i =
  t.probes <- t.probes + 1;
  let k = Array.unsafe_get t.tbl_keys i in
  if k = stored then Array.unsafe_get t.tbl_frames i
  else if k = 0 then -1
  else tbl_find_from t stored ((i + 1) land t.tbl_mask)

let tbl_find t key =
  tbl_find_from t (key + 1) (slot_of_key t key land t.tbl_mask)

let tbl_insert t key frame =
  let rec go i =
    if t.tbl_keys.(i) = 0 then begin
      t.tbl_keys.(i) <- key + 1;
      t.tbl_frames.(i) <- frame
    end
    else go ((i + 1) land t.tbl_mask)
  in
  go (slot_of_key t key land t.tbl_mask)

(* Backward-shift deletion keeps probe chains dense without tombstones:
   after freeing slot [i], any later entry in the cluster whose home
   slot is at or before [i] slides back into it. *)
let tbl_remove t key =
  let stored = key + 1 in
  let rec find i =
    let k = t.tbl_keys.(i) in
    if k = stored then i
    else if k = 0 then -1
    else find ((i + 1) land t.tbl_mask)
  in
  let i = find (slot_of_key t key land t.tbl_mask) in
  if i >= 0 then begin
    let hole = ref i in
    let j = ref ((i + 1) land t.tbl_mask) in
    let continue = ref true in
    while !continue do
      let k = t.tbl_keys.(!j) in
      if k = 0 then continue := false
      else begin
        let home = slot_of_key t (k - 1) land t.tbl_mask in
        if (!j - home) land t.tbl_mask >= (!j - !hole) land t.tbl_mask then begin
          t.tbl_keys.(!hole) <- k;
          t.tbl_frames.(!hole) <- t.tbl_frames.(!j);
          hole := !j
        end;
        j := (!j + 1) land t.tbl_mask
      end
    done;
    t.tbl_keys.(!hole) <- 0
  end

(* ------------------------------------------------------------------ *)
(* Clock replacement.                                                   *)
(* ------------------------------------------------------------------ *)

(* Advance the hand, clearing reference bits, until an unreferenced and
   unpinned frame turns up. Pinned frames are passed over without
   touching their reference bit (they are in active use by definition).
   Two full sweeps clear every clearable bit, so a third finding nothing
   means every frame is pinned — a caller bug worth crashing loudly on
   rather than spinning. *)
let victim t =
  let n = Array.length t.bufs in
  let budget = ref (2 * n) in
  let rec sweep () =
    let idx = t.hand in
    t.hand <- (t.hand + 1) mod n;
    if t.pins.(idx) > 0 then begin
      decr budget;
      if !budget < 0 then
        failwith "Buffer_pool: all frames pinned, cannot evict";
      sweep ()
    end
    else if t.referenced.(idx) then begin
      t.referenced.(idx) <- false;
      decr budget;
      if !budget < 0 then
        failwith "Buffer_pool: all frames pinned, cannot evict";
      sweep ()
    end
    else idx
  in
  sweep ()

(* Read one block, retrying transient Io_errors with exponential
   backoff. Permanent errors and exhausted budgets count as a failure
   and propagate to the caller. *)
let pread_with_retry t h ~off ~buf =
  let rec go attempt sleep =
    try Device.pread h.device ~off ~buf
    with Io_error.E info when info.Io_error.transient && attempt < t.retry.attempts ->
      h.retries <- h.retries + 1;
      if sleep > 0. then Unix.sleepf sleep;
      go (attempt + 1) (sleep *. t.retry.multiplier)
  in
  try go 1 t.retry.backoff
  with e ->
    h.failures <- h.failures + 1;
    raise e

(* Make [block] of [h] resident and return its frame index. *)
let load_frame t h block =
  let key = pack_key ~id:h.id ~block in
  (* Sequential fast path: same block as last time, still owned by the
     frame we left it in. Eviction overwrites the frame's key, so a
     stale memo fails the comparison and falls through — no explicit
     invalidation anywhere. *)
  let m = h.memo_frame in
  if h.memo_key = key && Array.unsafe_get t.keys m = key then begin
    h.hits <- h.hits + 1;
    t.memo_hits <- t.memo_hits + 1;
    Array.unsafe_set t.referenced m true;
    m
  end
  else begin
    let idx =
      match t.obs with
      | None -> tbl_find t key
      | Some o ->
        let before = t.probes in
        let idx = tbl_find t key in
        Obs.Metric.observe o.probe_length (t.probes - before);
        idx
    in
    if idx >= 0 then begin
      h.hits <- h.hits + 1;
      t.referenced.(idx) <- true;
      h.memo_key <- key;
      h.memo_frame <- idx;
      idx
    end
    else begin
      h.misses <- h.misses + 1;
      (match t.obs with
      | Some { trace = Some sink; _ } ->
        Obs.Trace.instant sink "pool_miss"
          ~args:
            [
              ("handle", Obs.Trace.String h.name);
              ("block", Obs.Trace.Int block);
            ]
      | _ -> ());
      let idx = victim t in
      if t.keys.(idx) <> no_key then begin
        (match t.obs with
        | None -> ()
        | Some o -> (
          Obs.Metric.incr o.evictions;
          match o.trace with
          | Some sink ->
            Obs.Trace.instant sink "evict"
              ~args:[ ("frame", Obs.Trace.Int idx) ]
          | None -> ()));
        tbl_remove t t.keys.(idx)
      end;
      (* Detach the frame before the read so a failing device cannot
         leave a frame that claims an owner the table no longer maps. *)
      t.keys.(idx) <- no_key;
      pread_with_retry t h ~off:(block * t.block_size) ~buf:t.bufs.(idx);
      t.keys.(idx) <- key;
      t.referenced.(idx) <- true;
      tbl_insert t key idx;
      h.memo_key <- key;
      h.memo_frame <- idx;
      idx
    end
  end

let load t h block = t.bufs.(load_frame t h block)
let page = load

(* ------------------------------------------------------------------ *)
(* Pinning.                                                             *)
(* ------------------------------------------------------------------ *)

let pin t h ~block =
  let idx = load_frame t h block in
  t.pins.(idx) <- t.pins.(idx) + 1;
  (match t.obs with
  | None -> ()
  | Some o -> (
    Obs.Metric.incr o.pin_events;
    match o.trace with
    | Some sink ->
      Obs.Trace.instant sink "pin"
        ~args:[ ("frame", Obs.Trace.Int idx); ("block", Obs.Trace.Int block) ]
    | None -> ()));
  idx

let unpin t idx =
  let p = t.pins.(idx) in
  if p <= 0 then invalid_arg "Buffer_pool.unpin: frame is not pinned";
  t.pins.(idx) <- p - 1

let frame_bytes t idx = t.bufs.(idx)

let pinned_count t =
  Array.fold_left (fun acc p -> acc + if p > 0 then 1 else 0) 0 t.pins

(* ------------------------------------------------------------------ *)
(* Reads.                                                               *)
(* ------------------------------------------------------------------ *)

let read_byte t h off =
  let buf = load t h (off / t.block_size) in
  Char.code (Bytes.unsafe_get buf (off mod t.block_size))

let read_u32 t h off =
  if off land 3 <> 0 then invalid_arg "Buffer_pool.read_u32: unaligned offset";
  let buf = load t h (off / t.block_size) in
  let base = off mod t.block_size in
  Char.code (Bytes.unsafe_get buf base)
  lor (Char.code (Bytes.unsafe_get buf (base + 1)) lsl 8)
  lor (Char.code (Bytes.unsafe_get buf (base + 2)) lsl 16)
  lor (Char.code (Bytes.unsafe_get buf (base + 3)) lsl 24)

let read_bytes_into t h ~off ~len ~dst ~dst_off =
  if len < 0 || dst_off < 0 || dst_off + len > Bytes.length dst then
    invalid_arg "Buffer_pool.read_bytes_into: bad range";
  let pos = ref off and written = ref dst_off and remaining = ref len in
  while !remaining > 0 do
    let block = !pos / t.block_size in
    let base = !pos mod t.block_size in
    let chunk = min !remaining (t.block_size - base) in
    let buf = load t h block in
    Bytes.blit buf base dst !written chunk;
    pos := !pos + chunk;
    written := !written + chunk;
    remaining := !remaining - chunk
  done

(* ------------------------------------------------------------------ *)
(* Statistics.                                                          *)
(* ------------------------------------------------------------------ *)

let stats h =
  { hits = h.hits; misses = h.misses; retries = h.retries; failures = h.failures }

let hit_ratio (s : stats) =
  let total = s.hits + s.misses in
  if total = 0 then 1.0 else float_of_int s.hits /. float_of_int total

let probes t = t.probes
let memo_hits t = t.memo_hits

let reset_stats t =
  t.probes <- 0;
  t.memo_hits <- 0;
  List.iter
    (fun h ->
      h.hits <- 0;
      h.misses <- 0;
      h.retries <- 0;
      h.failures <- 0)
    t.handles

let drop_all t =
  if pinned_count t > 0 then
    invalid_arg "Buffer_pool.drop_all: frames are pinned";
  reset_stats t;
  Array.fill t.tbl_keys 0 (Array.length t.tbl_keys) 0;
  Array.fill t.keys 0 (Array.length t.keys) no_key;
  Array.fill t.referenced 0 (Array.length t.referenced) false;
  (* Stale memos fail their owner-key check, but clear them anyway so a
     dropped pool looks exactly like a fresh one. *)
  List.iter (fun h -> h.memo_key <- no_key) t.handles;
  t.hand <- 0
