(** The manifest tying a sharded on-disk index together.

    A sharded index directory holds one complete {!Disk_tree} image per
    shard in [shard0/ .. shard<K-1>/] plus a [manifest.dat] recording
    how the database was partitioned: the sharded search must rebuild
    {e exactly} the partition the index was built with (shard-local
    sequence numbering depends on it), so the split is recorded rather
    than re-derived. Each entry gives the shard's first global sequence
    index, its sequence count and its symbol count — enough to carve
    the shard sub-databases back out of the loaded database and to
    sanity-check that the database on hand is the one that was indexed.

    Each entry may also embed the shard's root q-gram bitset
    ({!Quasar.Profile.root_grams}) — the whole shard's gram content —
    so a sharded search can seed per-shard merge caps (DESIGN.md §2k)
    without opening every shard's full profile sidecar. The bitset is
    opaque here; empty means "not recorded" (e.g. a version-1 manifest,
    which is still readable).

    The payload carries its own magic and is sealed with a {!Footer}
    (version + length + CRC-32), so truncation and bit rot surface as
    {!Corrupt} at open time, like any other index component. *)

type entry = {
  first_seq : int;  (** global index of the shard's first sequence *)
  num_seqs : int;
  symbols : int;  (** total symbols in the shard's sequences *)
  grams : Bytes.t;
      (** root q-gram bitset of the shard's profile, or empty when the
          index was built without one *)
}

exception Corrupt of string
(** Raised by {!read}/{!load} on a damaged or alien manifest. *)

val filename : string
(** ["manifest.dat"] *)

val shard_dir : string -> int -> string
(** [shard_dir dir i] is ["<dir>/shard<i>"], the per-shard index
    directory. *)

val write : Device.t -> entry array -> unit
(** Serialize entries (device must be empty) and seal with a footer.
    Raises [Invalid_argument] on an empty array or entries that are
    not contiguous from sequence 0. *)

val read : Device.t -> entry array
(** Verify the footer and parse; raises {!Corrupt} on damage. *)

val save : dir:string -> entry array -> unit
(** {!write} to ["<dir>/manifest.dat"]. *)

val load : dir:string -> entry array
(** {!read} from ["<dir>/manifest.dat"]; raises {!Io_error.E} when the
    file is missing (use {!exists} to probe). *)

val exists : dir:string -> bool
(** Whether ["<dir>/manifest.dat"] is present — how the CLI tells a
    sharded index directory from a plain one. *)
