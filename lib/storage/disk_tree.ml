let internal_entry_bytes = 16
let leaf_entry_bytes = 4
let leaf_header_bytes = 16
let internal_header_bytes = 16
let sentinel = 0xFFFFFFFF
let last_flag = 1 lsl 31
let depth_mask = last_flag - 1

type layout = Position_indexed | Clustered

(* Leaves-file header: magic "OASL", format version, layout tag.
   Internal-file header: magic "OASI", format version, root-directory
   entry count, entries-region offset. The root's children are listed
   in an explicit directory (rather than relying on sibling adjacency)
   so that partitioned external construction can emit each root subtree
   independently. Directory entries tag bit 31 for leaf children. *)
let leaf_magic = 0x4C53414F (* "OASL" *)
let internal_magic = 0x4953414F (* "OASI" *)
let layout_tag = function Position_indexed -> 0 | Clustered -> 1

let layout_of_tag = function
  | 0 -> Position_indexed
  | 1 -> Clustered
  | t -> invalid_arg (Printf.sprintf "Disk_tree: unknown layout tag %d" t)

let put_u32 buf v =
  Buffer.add_char buf (Char.chr (v land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF))

let u32_bytes v =
  let buf = Buffer.create 4 in
  put_u32 buf v;
  Buffer.to_bytes buf

let round16 n = (n + 15) / 16 * 16

(* ------------------------------------------------------------------ *)
(* Shared subtree serializer.                                           *)
(* ------------------------------------------------------------------ *)

(* Sinks the writers provide: [emit_internal] appends one 16-byte entry
   (called in index order: indices are assigned on enqueue and entries
   are emitted on dequeue of a FIFO, which is exactly BFS order);
   [alloc_leaf_run] stores one node's leaf occurrence positions and
   returns the directory/first-leaf token for them. *)
type sink = {
  mutable next_internal : int;
  emit_internal :
    depth:int ->
    last:bool ->
    start:int ->
    first_internal:int ->
    first_leaf:int ->
    unit;
  alloc_leaf_run : int list -> int;
}

(* A leaf node may carry several positions (equal suffixes of different
   sequences); the reader flattens runs into sibling leaves, one per
   position. Sort each leaf child's positions ascending so the on-disk
   sibling order matches the canonical order [Source.Mem] iterates in —
   that correspondence is what makes Mem and Disk hit streams
   bit-identical under score ties. *)
let leaf_slots_of child = List.sort Int.compare (Suffix_tree.Tree.positions child)

(* BFS-serialize the subtree rooted at the internal node [node], whose
   index is [sink.next_internal] at call time. [depth] is [node]'s path
   depth and [last] its sibling flag. *)
let serialize_subtree sink node ~depth ~last =
  let queue = Queue.create () in
  let take_index () =
    let i = sink.next_internal in
    sink.next_internal <- i + 1;
    i
  in
  ignore (take_index ());
  Queue.add (node, depth, last) queue;
  while not (Queue.is_empty queue) do
    let node, depth, last = Queue.pop queue in
    let internal_children, leaf_slots =
      List.fold_left
        (fun (ints, slots) child ->
          if Suffix_tree.Tree.is_leaf child then
            (ints, slots @ leaf_slots_of child)
          else (ints @ [ child ], slots))
        ([], [])
        (Suffix_tree.Tree.children node)
    in
    let first_leaf =
      if leaf_slots = [] then sentinel else sink.alloc_leaf_run leaf_slots
    in
    let first_internal =
      match internal_children with
      | [] -> sentinel
      | children ->
        let first = sink.next_internal in
        let n = List.length children in
        List.iteri
          (fun i child ->
            let cstart, cstop = Suffix_tree.Tree.label child in
            ignore (take_index ());
            Queue.add (child, depth + cstop - cstart, i = n - 1) queue)
          children;
        first
    in
    let start, _ = Suffix_tree.Tree.label node in
    sink.emit_internal ~depth ~last ~start:(max start 0) ~first_internal
      ~first_leaf
  done

(* ------------------------------------------------------------------ *)
(* Writers.                                                             *)
(* ------------------------------------------------------------------ *)

let dir_entry_of_leaf_token token = token lor last_flag
let dir_entry_of_internal index = index

let write_leaf_header leaves layout =
  let header = Buffer.create leaf_header_bytes in
  put_u32 header leaf_magic;
  put_u32 header 2 (* format version *);
  put_u32 header (layout_tag layout);
  put_u32 header 0;
  Device.append leaves (Buffer.to_bytes header)

let write_internal_header internal ~dir_count ~dir_cap =
  let entries_offset = round16 (internal_header_bytes + (4 * dir_cap)) in
  let header = Buffer.create internal_header_bytes in
  put_u32 header internal_magic;
  put_u32 header 2;
  put_u32 header dir_count;
  put_u32 header entries_offset;
  Device.append internal (Buffer.to_bytes header);
  Device.append internal
    (Bytes.make (entries_offset - internal_header_bytes) '\000');
  entries_offset

(* Leaf-run allocators for the two layouts. Position-indexed writes go
   through pwrite into the reserved array; clustered runs are appended.
   Runs arrive in canonical sibling order (see [leaf_slots_of]) and are
   stored verbatim: the reader flattens a run back into sibling leaves,
   so the stored order is the order the engine enqueues them in. *)
let position_indexed_alloc leaves slots =
  let rec chain = function
    | [] -> ()
    | [ last_slot ] ->
      Device.pwrite leaves
        ~off:(leaf_header_bytes + (leaf_entry_bytes * last_slot))
        (u32_bytes sentinel)
    | slot :: (next :: _ as rest) ->
      Device.pwrite leaves
        ~off:(leaf_header_bytes + (leaf_entry_bytes * slot))
        (u32_bytes next);
      chain rest
  in
  chain slots;
  List.hd slots

let clustered_alloc leaves counter slots =
  let first = !counter in
  let n = List.length slots in
  List.iteri
    (fun i pos ->
      incr counter;
      Device.append leaves
        (u32_bytes (pos lor (if i = n - 1 then last_flag else 0))))
    slots;
  first

let make_sink ~layout ~internal ~leaves ~clustered_counter =
  let buf = Buffer.create 16 in
  {
    next_internal = 0;
    emit_internal =
      (fun ~depth ~last ~start ~first_internal ~first_leaf ->
        Buffer.clear buf;
        put_u32 buf (depth lor (if last then last_flag else 0));
        put_u32 buf start;
        put_u32 buf first_internal;
        put_u32 buf first_leaf;
        Device.append internal (Buffer.to_bytes buf));
    alloc_leaf_run =
      (match layout with
      | Position_indexed -> position_indexed_alloc leaves
      | Clustered -> clustered_alloc leaves clustered_counter);
  }

(* Serialize one child of the (possibly virtual) root, returning its
   directory entry. *)
let serialize_root_child sink child =
  if Suffix_tree.Tree.is_leaf child then
    dir_entry_of_leaf_token (sink.alloc_leaf_run (leaf_slots_of child))
  else begin
    let cstart, cstop = Suffix_tree.Tree.label child in
    let index = sink.next_internal in
    serialize_subtree sink child ~depth:(cstop - cstart) ~last:true;
    dir_entry_of_internal index
  end

let backfill_directory internal entries =
  List.iteri
    (fun i entry ->
      Device.pwrite internal
        ~off:(internal_header_bytes + (4 * i))
        (u32_bytes entry))
    entries

(* Every component ends in a self-describing integrity footer; written
   last, after all backfills, so the CRC covers the final contents. *)
let append_footers ~symbols ~internal ~leaves =
  Footer.append symbols;
  Footer.append internal;
  Footer.append leaves

let write ?(layout = Position_indexed) tree ~symbols ~internal ~leaves =
  if
    Device.length symbols <> 0 || Device.length internal <> 0
    || Device.length leaves <> 0
  then invalid_arg "Disk_tree.write: devices must be empty";
  let db = Suffix_tree.Tree.database tree in
  (* The database buffer may carry append slack; write exactly the
     concatenation. *)
  let data_len = Bioseq.Database.data_length db in
  let data = Bytes.sub (Bioseq.Database.data db) 0 data_len in
  Device.append symbols data;
  write_leaf_header leaves layout;
  (match layout with
  | Position_indexed ->
    (* Reserve the position-indexed array (backfilled via pwrite). *)
    Device.append leaves
      (Bytes.make (leaf_entry_bytes * data_len) '\255')
  | Clustered -> ());
  (* Canonical sibling order at the root too: internal children first,
     then leaf children, matching both the interior-node layout (one
     internal run + one leaf run) and [Source.Mem]'s iteration order. *)
  let root_children =
    let ints, leafs =
      List.partition
        (fun c -> not (Suffix_tree.Tree.is_leaf c))
        (Suffix_tree.Tree.children (Suffix_tree.Tree.root tree))
    in
    ints @ leafs
  in
  let dir_cap = List.length root_children in
  ignore (write_internal_header internal ~dir_count:dir_cap ~dir_cap);
  let clustered_counter = ref 0 in
  let sink = make_sink ~layout ~internal ~leaves ~clustered_counter in
  backfill_directory internal
    (List.map (serialize_root_child sink) root_children);
  append_footers ~symbols ~internal ~leaves

module Private = struct
  type nonrec sink = sink

  let make_sink = make_sink
  let serialize_root_child = serialize_root_child
  let write_leaf_header = write_leaf_header

  let reserve_position_leaves leaves n =
    Device.append leaves (Bytes.make (leaf_entry_bytes * n) '\255')

  let write_internal_header = write_internal_header

  let backfill_directory_entry internal i entry =
    Device.pwrite internal
      ~off:(internal_header_bytes + (4 * i))
      (u32_bytes entry)

  let set_dir_count internal count =
    Device.pwrite internal ~off:8 (u32_bytes count)

  let append_footers = append_footers
end

(* ------------------------------------------------------------------ *)
(* Reader.                                                              *)
(* ------------------------------------------------------------------ *)

type t = {
  alphabet : Bioseq.Alphabet.t;
  layout : layout;
  pool : Buffer_pool.t;
  symbols_h : Buffer_pool.handle;
  internal_h : Buffer_pool.handle;
  leaves_h : Buffer_pool.handle;
  dir_count : int;
  entries_offset : int;
  data_length : int;
  symbols_bytes : int;
  internal_bytes : int;
  leaves_bytes : int;
  bs : int;  (** pool block size, cached for offset arithmetic *)
  (* Terminator positions in ascending order, scanned once at open time:
     a leaf arc's real end is the first terminator at or after its
     suffix position (arcs never cross terminators), found by binary
     search — no [max_int] sentinel, no per-call I/O. *)
  seq_ends : int array;
  (* Scratch stack of sibling-run head indices for [iter_positions];
     reused across calls so steady-state emission allocates nothing. *)
  mutable pstack : int array;
  mutable psp : int;
}

(* A traversal handle is an immediate integer, so child enumeration and
   the engine's task bookkeeping allocate nothing per node:

     bit 61       1 = leaf occurrence, 0 = internal node
     bits 32..60  parent depth (string depth of the parent node)
     bits 0..31   leaf: suffix position; internal: entry index

   The root is [-1], the only negative handle. The on-disk format stores
   positions and indices as u32, so 32 payload bits are exact; parent
   depth is bounded by the data length, far below 2^29. Entry fields
   (label start, depth, child-run heads) are re-read through the buffer
   pool on demand — consecutive probes of one node's 16-byte entry all
   land on the same page, which the per-handle memo resolves with a
   single comparison. *)
type node = int

let node_leaf_tag = 1 lsl 61
let[@inline] pack_internal ~parent_depth index = (parent_depth lsl 32) lor index

let[@inline] pack_leaf ~parent_depth slot =
  node_leaf_tag lor (parent_depth lsl 32) lor slot

let[@inline] node_payload n = n land 0xFFFF_FFFF
let[@inline] node_parent_depth n = (n lsr 32) land 0x1FFF_FFFF

type verify = Off | Footer | Full

exception Corrupt of { component : string; message : string }

let corrupt component fmt =
  Printf.ksprintf (fun message -> raise (Corrupt { component; message })) fmt

(* Payload length of one component. With verification on, the footer
   must be present, versioned, and (at [Footer] and above) CRC-clean;
   with it off, a parseable footer still supplies the payload length so
   readers never mistake the footer for tree data, and a footerless
   (legacy) image is taken whole. *)
let component_payload ~verify name device =
  match verify with
  | Off -> (
    match Footer.read device with
    | Some f when f.Footer.payload_length = Device.length device - Footer.size
      ->
      f.Footer.payload_length
    | Some _ | None -> Device.length device)
  | Footer | Full -> (
    match Footer.verify device with
    | Ok f -> f.Footer.payload_length
    | Error message -> raise (Corrupt { component = name; message }))

(* One sequential pass over the symbols device collecting terminator
   positions. Reads the device directly — not through the pool — so
   opening an index neither pollutes the per-component hit/miss
   statistics nor evicts anything a caller primed; transient faults are
   retried under the pool's policy like any pooled read would be. *)
let scan_seq_ends ~retry symbols ~payload ~term =
  let pread_retrying ~off ~buf =
    let rec go attempt sleep =
      try Device.pread symbols ~off ~buf
      with Io_error.E info
        when info.Io_error.transient
             && attempt < retry.Buffer_pool.attempts ->
        if sleep > 0. then Unix.sleepf sleep;
        go (attempt + 1) (sleep *. retry.Buffer_pool.multiplier)
    in
    go 1 retry.Buffer_pool.backoff
  in
  let ends = ref [] in
  let chunk_len = 65536 in
  let chunk = Bytes.create chunk_len in
  let off = ref 0 in
  while !off < payload do
    let len = min chunk_len (payload - !off) in
    let buf = if len = chunk_len then chunk else Bytes.create len in
    pread_retrying ~off:!off ~buf;
    for i = 0 to len - 1 do
      if Char.code (Bytes.unsafe_get buf i) = term then
        ends := (!off + i) :: !ends
    done;
    off := !off + len
  done;
  let arr = Array.of_list !ends in
  let n = Array.length arr in
  let rev = Array.make n 0 in
  for i = 0 to n - 1 do
    rev.(i) <- arr.(n - 1 - i)
  done;
  rev

(* Attach and parse headers; the [Full] structural walk is layered on in
   [open_] below, after [check] is defined. *)
let open_internal ~verify ~alphabet ~pool ~symbols ~internal ~leaves =
  let symbols_bytes = component_payload ~verify "symbols" symbols in
  let internal_bytes = component_payload ~verify "internal" internal in
  let leaves_bytes = component_payload ~verify "leaves" leaves in
  let leaves_h = Buffer_pool.attach pool ~name:"leaves" leaves in
  if leaves_bytes < leaf_header_bytes then
    corrupt "leaves" "component too short for its header (%d bytes)"
      leaves_bytes;
  if Buffer_pool.read_u32 pool leaves_h 0 <> leaf_magic then
    invalid_arg "Disk_tree.open_: bad leaves-file magic";
  let layout = layout_of_tag (Buffer_pool.read_u32 pool leaves_h 8) in
  let internal_h = Buffer_pool.attach pool ~name:"internal" internal in
  if internal_bytes < internal_header_bytes then
    corrupt "internal" "component too short for its header (%d bytes)"
      internal_bytes;
  if Buffer_pool.read_u32 pool internal_h 0 <> internal_magic then
    invalid_arg "Disk_tree.open_: bad internal-file magic";
  let dir_count = Buffer_pool.read_u32 pool internal_h 8 in
  let entries_offset = Buffer_pool.read_u32 pool internal_h 12 in
  let seq_ends =
    scan_seq_ends
      ~retry:(Buffer_pool.retry_policy pool)
      symbols ~payload:symbols_bytes
      ~term:(Bioseq.Alphabet.terminator alphabet)
  in
  {
    alphabet;
    layout;
    pool;
    symbols_h = Buffer_pool.attach pool ~name:"symbols" symbols;
    internal_h;
    leaves_h;
    dir_count;
    entries_offset;
    data_length = symbols_bytes;
    symbols_bytes;
    internal_bytes;
    leaves_bytes;
    bs = Buffer_pool.block_size pool;
    seq_ends;
    pstack = Array.make 64 0;
    psp = 0;
  }

let of_tree ?layout ?(block_size = 2048) ?(capacity = 256) tree =
  let symbols = Device.in_memory ()
  and internal = Device.in_memory ()
  and leaves = Device.in_memory () in
  write ?layout tree ~symbols ~internal ~leaves;
  let pool = Buffer_pool.create ~block_size ~capacity in
  let alphabet = Bioseq.Database.alphabet (Suffix_tree.Tree.database tree) in
  (open_internal ~verify:Off ~alphabet ~pool ~symbols ~internal ~leaves, pool)

let layout t = t.layout

let internal_count t =
  (t.internal_bytes - t.entries_offset) / internal_entry_bytes

let root _ = -1
let is_leaf n = n >= 0 && n land node_leaf_tag <> 0

let[@inline] get_u32 buf base =
  Char.code (Bytes.unsafe_get buf base)
  lor (Char.code (Bytes.unsafe_get buf (base + 1)) lsl 8)
  lor (Char.code (Bytes.unsafe_get buf (base + 2)) lsl 16)
  lor (Char.code (Bytes.unsafe_get buf (base + 3)) lsl 24)

(* Decode one 16-byte entry with a single pool probe: [entries_offset]
   is 16-aligned and the block size is a multiple of 16, so an entry
   never straddles a block boundary. *)
let read_entry t index =
  let off = t.entries_offset + (internal_entry_bytes * index) in
  let buf = Buffer_pool.page t.pool t.internal_h (off / t.bs) in
  let base = off mod t.bs in
  let word0 = get_u32 buf base in
  let depth = word0 land depth_mask in
  let last = word0 land last_flag <> 0 in
  let start = get_u32 buf (base + 4) in
  let first_internal = get_u32 buf (base + 8) in
  let first_leaf = get_u32 buf (base + 12) in
  (depth, last, start, first_internal, first_leaf)

(* One u32 field of entry [index]: a single pool probe (memo hit for
   repeated probes of the same node) and no allocation. *)
let[@inline] entry_field t index fo =
  let off = t.entries_offset + (internal_entry_bytes * index) + fo in
  get_u32 (Buffer_pool.page t.pool t.internal_h (off / t.bs)) (off mod t.bs)

let[@inline] slot_off slot = leaf_header_bytes + (leaf_entry_bytes * slot)

(* ------------------------------------------------------------------ *)
(* Allocation-free child iteration.                                     *)
(*                                                                      *)
(* Contiguous runs — internal sibling entries and clustered leaf runs — *)
(* are decoded straight out of a pinned page: one pin per page instead  *)
(* of one table probe per word, and the page stays resident while the   *)
(* callback does its own pool reads (symbol lookups during expansion).  *)
(* At most one frame is ever pinned at a time, so a two-frame pool      *)
(* always has a frame left for the callback's reads.                    *)
(* ------------------------------------------------------------------ *)

(* The run walkers below thread their state through tail-call integer
   parameters rather than refs — refs are heap blocks, and these run
   once per node expansion on the search's hot path. Each walker pins a
   page, decodes entries until the run ends or the page does, and
   re-pins across the boundary; the [try] re-raises with the pin
   released if the callback throws. *)

(* Position-indexed chains hop by suffix position, so links are random
   access: read each through the pool (the memo still absorbs links that
   land in the same block). *)
let rec iter_leaf_chain t ~depth slot f =
  if slot <> sentinel then begin
    f (pack_leaf ~parent_depth:depth slot);
    iter_leaf_chain t ~depth
      (Buffer_pool.read_u32 t.pool t.leaves_h (slot_off slot))
      f
  end

(* Clustered leaf entries of one run, pinned page by pinned page.
   Returns the entry index to continue at, or [-1] when the run's
   last-sibling flag was seen. *)
let rec iter_leaf_run t ~depth index f =
  let frame = Buffer_pool.pin t.pool t.leaves_h ~block:(slot_off index / t.bs) in
  let next =
    try
      let buf = Buffer_pool.frame_bytes t.pool frame in
      let rec entries index base =
        if base + leaf_entry_bytes > t.bs then index
        else begin
          let word = get_u32 buf base in
          f (pack_leaf ~parent_depth:depth (word land depth_mask));
          if word land last_flag <> 0 then -1
          else entries (index + 1) (base + leaf_entry_bytes)
        end
      in
      entries index (slot_off index mod t.bs)
    with e ->
      Buffer_pool.unpin t.pool frame;
      raise e
  in
  Buffer_pool.unpin t.pool frame;
  if next >= 0 then iter_leaf_run t ~depth next f

let iter_leaf_token t ~depth token f =
  if token <> sentinel then
    match t.layout with
    | Position_indexed -> iter_leaf_chain t ~depth token f
    | Clustered -> iter_leaf_run t ~depth token f

(* One sibling handle per 16-byte entry, with only the depth word read
   from the pinned page — the handle is the entry index plus the shared
   parent depth, both already in hand. *)
let rec iter_internal_run t ~parent_depth index f =
  let off = t.entries_offset + (internal_entry_bytes * index) in
  let frame = Buffer_pool.pin t.pool t.internal_h ~block:(off / t.bs) in
  let next =
    try
      let buf = Buffer_pool.frame_bytes t.pool frame in
      let rec entries index base =
        if base + internal_entry_bytes > t.bs then index
        else begin
          let word0 = get_u32 buf base in
          f (pack_internal ~parent_depth index);
          if word0 land last_flag <> 0 then -1
          else entries (index + 1) (base + internal_entry_bytes)
        end
      in
      entries index (off mod t.bs)
    with e ->
      Buffer_pool.unpin t.pool frame;
      raise e
  in
  Buffer_pool.unpin t.pool frame;
  if next >= 0 then iter_internal_run t ~parent_depth next f

let iter_children t node f =
  if node < 0 then
    (* Root: the directory lists one run head per first symbol. *)
    for i = 0 to t.dir_count - 1 do
      let entry =
        Buffer_pool.read_u32 t.pool t.internal_h
          (internal_header_bytes + (4 * i))
      in
      if entry land last_flag <> 0 then
        (* A leaf run hanging directly off the root. *)
        iter_leaf_token t ~depth:0 (entry land depth_mask) f
      else f (pack_internal ~parent_depth:0 entry)
    done
  else if node land node_leaf_tag = 0 then begin
    (* Internal: decode the entry once up front — the page is not
       pinned here, so all fields must be read before the run walkers
       (and the callback's own pool reads) can recycle the frame. *)
    let index = node_payload node in
    let off = t.entries_offset + (internal_entry_bytes * index) in
    let buf = Buffer_pool.page t.pool t.internal_h (off / t.bs) in
    let base = off mod t.bs in
    let depth = get_u32 buf base land depth_mask in
    let first_internal = get_u32 buf (base + 8) in
    let first_leaf = get_u32 buf (base + 12) in
    if first_internal <> sentinel then
      iter_internal_run t ~parent_depth:depth first_internal f;
    iter_leaf_token t ~depth first_leaf f
  end

let children t node =
  let acc = ref [] in
  iter_children t node (fun c -> acc := c :: !acc);
  List.rev !acc

let label_start t n =
  if n < 0 then invalid_arg "Disk_tree.label_start: root has no incoming arc"
  else if n land node_leaf_tag <> 0 then node_payload n + node_parent_depth n
  else entry_field t (node_payload n) 4

let label_stop t n =
  if n < 0 then invalid_arg "Disk_tree.label_stop: root has no incoming arc"
  else if n land node_leaf_tag <> 0 then None
  else
    let index = node_payload n in
    let depth = entry_field t index 0 land depth_mask in
    Some (entry_field t index 4 + depth - node_parent_depth n)

let node_depth t n =
  if n >= 0 && n land node_leaf_tag = 0 then
    Some (entry_field t (node_payload n) 0 land depth_mask)
  else None

let leaf_position n = if is_leaf n then Some (node_payload n) else None

let symbol t pos = Buffer_pool.read_byte t.pool t.symbols_h pos
let data_length t = t.data_length
let terminator t = Bioseq.Alphabet.terminator t.alphabet

(* Exclusive end of a node's incoming arc label. For a leaf the arc runs
   to its sequence's terminator (inclusive): the first terminator at or
   after the suffix position, found by binary search in [seq_ends] — the
   arc cannot cross an earlier one. Matches [Suffix_tree.Tree.label_stop]
   on the equivalent in-memory leaf. *)
let label_end t node =
  if node < 0 then
    invalid_arg "Disk_tree.label_end: root has no incoming arc"
  else if node land node_leaf_tag <> 0 then begin
    let slot = node_payload node in
    let ends = t.seq_ends in
    let n = Array.length ends in
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) lsr 1 in
      if Array.unsafe_get ends mid >= slot then hi := mid else lo := mid + 1
    done;
    if !lo < n then Array.unsafe_get ends !lo + 1 else t.data_length
  end
  else
    let index = node_payload node in
    let depth = entry_field t index 0 land depth_mask in
    entry_field t index 4 + depth - node_parent_depth node

(* ------------------------------------------------------------------ *)
(* Allocation-free position emission.                                   *)
(* ------------------------------------------------------------------ *)

let push_run t head =
  if t.psp = Array.length t.pstack then begin
    let bigger = Array.make (2 * t.psp) 0 in
    Array.blit t.pstack 0 bigger 0 t.psp;
    t.pstack <- bigger
  end;
  t.pstack.(t.psp) <- head;
  t.psp <- t.psp + 1

(* Emit one leaf token's positions. No pins are held: leaf runs/chains
   are read word-by-word through the pool, where the per-handle memo
   absorbs the sequential accesses, so the callback is free to do its
   own pool reads. *)
let iter_slots t token f =
  match t.layout with
  | Position_indexed ->
    let slot = ref token in
    while !slot <> sentinel do
      f !slot;
      slot := Buffer_pool.read_u32 t.pool t.leaves_h (slot_off !slot)
    done
  | Clustered ->
    let index = ref token in
    let continue = ref true in
    while !continue do
      let word = Buffer_pool.read_u32 t.pool t.leaves_h (slot_off !index) in
      f (word land depth_mask);
      continue := word land last_flag = 0;
      incr index
    done

(* Iterate every leaf occurrence position under [node] without building
   lists: an explicit stack of sibling-run head indices (scratch storage
   in [t], so steady-state emission allocates nothing). Not reentrant —
   the engine emits one node at a time. Order is unspecified; callers
   that need sorted positions sort. *)
let iter_positions t node f =
  t.psp <- 0 (* reset in case a previous traversal was interrupted *);
  let emit_token token = if token <> sentinel then iter_slots t token f in
  let walk_run head =
    push_run t head;
    while t.psp > 0 do
      t.psp <- t.psp - 1;
      let index = ref t.pstack.(t.psp) in
      let continue = ref true in
      while !continue do
        (* Entry decode inlined (rather than via [read_entry]) to avoid
           boxing a tuple per entry on the emission path. All fields are
           read before [emit_token]: the page is not pinned, and the
           token's own pool reads could recycle the frame under [buf]. *)
        let off = t.entries_offset + (internal_entry_bytes * !index) in
        let buf = Buffer_pool.page t.pool t.internal_h (off / t.bs) in
        let base = off mod t.bs in
        let word0 = get_u32 buf base in
        let first_internal = get_u32 buf (base + 8) in
        let first_leaf = get_u32 buf (base + 12) in
        emit_token first_leaf;
        if first_internal <> sentinel then push_run t first_internal;
        continue := word0 land last_flag = 0;
        incr index
      done
    done
  in
  if node >= 0 && node land node_leaf_tag <> 0 then f (node_payload node)
  else if node >= 0 then begin
    let index = node_payload node in
    let first_internal = entry_field t index 8 in
    emit_token (entry_field t index 12);
    if first_internal <> sentinel then walk_run first_internal
  end
  else
    for i = 0 to t.dir_count - 1 do
      let entry =
        Buffer_pool.read_u32 t.pool t.internal_h
          (internal_header_bytes + (4 * i))
      in
      if entry land last_flag <> 0 then emit_token (entry land depth_mask)
      else
        (* Root children are serialized with the last-sibling flag set,
           so the run starting at this entry is exactly this subtree. *)
        walk_run entry
    done

(* Pool traffic across the reader's three components, for engine-level
   I/O accounting (hits, misses). *)
let io_stats t =
  let open Buffer_pool in
  let s = stats t.symbols_h
  and i = stats t.internal_h
  and l = stats t.leaves_h in
  (s.hits + i.hits + l.hits, s.misses + i.misses + l.misses)

let validate t =
  let term = terminator t in
  let total = t.data_length in
  let errors = ref [] in
  let error fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  let seen = Bytes.make total '\000' in
  let rec walk node depth =
    if is_leaf node then begin
      match leaf_position node with
      | None -> error "leaf without position"
      | Some p ->
        if p < 0 || p >= total then error "leaf position %d out of range" p
        else begin
          if Bytes.get seen p <> '\000' then
            error "suffix position %d covered twice" p;
          Bytes.set seen p '\001';
          (* The leaf arc must run from p+depth to a terminator without
             crossing one earlier. *)
          let start = label_start t node in
          if start <> p + depth then
            error "leaf %d arc starts at %d, expected %d" p start (p + depth);
          let rec scan i =
            if i >= total then error "leaf %d arc runs off the data" p
            else if symbol t i <> term then scan (i + 1)
          in
          if start < total then scan start else error "leaf %d arc start out of range" p
        end
    end
    else begin
      let kids = children t node in
      (if node >= 0 then begin
         (* Internal (leaves take the other branch of [walk]). *)
         let index = node_payload node in
         let d, _, start, _, _ = read_entry t index in
         let parent_depth = node_parent_depth node in
         if d <= parent_depth then
           error "entry %d: depth %d not below parent %d" index d parent_depth;
         if start < 0 || start + (d - parent_depth) > total then
           error "entry %d: label out of range" index;
         for i = start to start + (d - parent_depth) - 1 do
           if symbol t i = term && i < start + (d - parent_depth) - 1 then
             error "entry %d: label crosses a terminator" index
         done;
         if List.length kids < 2 then
           error "entry %d: fewer than 2 children" index
       end);
      (* Sibling first symbols must be distinct — except that several
         leaf occurrences of one identical suffix legitimately share a
         chain (e.g. every sequence's terminator-only suffix). *)
      let first_symbols : (int, node) Hashtbl.t = Hashtbl.create 8 in
      let same_suffix a b =
        let rec go i j =
          let ca = symbol t i and cb = symbol t j in
          if ca <> cb then false else ca = term || go (i + 1) (j + 1)
        in
        go (label_start t a) (label_start t b)
      in
      List.iter
        (fun child ->
          let c = symbol t (label_start t child) in
          (match Hashtbl.find_opt first_symbols c with
          | Some prev ->
            if not (is_leaf child && is_leaf prev && same_suffix child prev)
            then error "two children with first symbol %d" c
          | None -> ());
          Hashtbl.replace first_symbols c child;
          let child_depth =
            match node_depth t child with
            | Some d -> d
            | None ->
              (* Leaf: depth is the parent's. *)
              depth
          in
          walk child child_depth)
        kids
    end
  in
  walk (root t) 0;
  for p = 0 to total - 1 do
    if Bytes.get seen p = '\000' then error "suffix position %d not covered" p
  done;
  match List.rev !errors with
  | [] -> Ok ()
  | errs ->
    Error
      (String.concat "; " (List.filteri (fun i _ -> i < 10) errs))

type component = Symbols | Internal_nodes | Leaves

let component_name = function
  | Symbols -> "symbols"
  | Internal_nodes -> "internal"
  | Leaves -> "leaves"

(* ------------------------------------------------------------------ *)
(* Defensive structural check.                                          *)
(* ------------------------------------------------------------------ *)

type issue = { component : component; offset : int; message : string }

exception Check_stop

(* Unlike [validate] — which assumes a well-formed image and checks its
   suffix-tree semantics — [check] trusts nothing: every index, offset
   and chain link is bounds-checked before it is followed, leaf chains
   are cycle-checked, and each inconsistency is reported with the device
   offset of the offending word instead of surfacing later as a wrong
   alignment or an out-of-bounds read. *)
let check ?(max_issues = 100) t =
  let issues = ref [] in
  let count = ref 0 in
  let report component offset fmt =
    Printf.ksprintf
      (fun message ->
        issues := { component; offset; message } :: !issues;
        incr count;
        if !count >= max_issues then raise Check_stop)
      fmt
  in
  let n_entries =
    max 0 ((t.internal_bytes - t.entries_offset) / internal_entry_bytes)
  in
  let leaf_region = max 0 (t.leaves_bytes - leaf_header_bytes) in
  let n_leaf_entries = leaf_region / leaf_entry_bytes in
  let entry_off i = t.entries_offset + (internal_entry_bytes * i) in
  let slot_off s = leaf_header_bytes + (leaf_entry_bytes * s) in
  (* One mark per leaf entry: a slot reached twice means two chains (or
     one cyclic chain) share it. *)
  let visited_leaf = Bytes.make (max 1 n_leaf_entries) '\000' in
  (* [src] locates the word that referenced an out-of-range target. *)
  let check_leaf_token ~src token =
    if token <> sentinel then
      match t.layout with
      | Position_indexed ->
        if token < 0 || token >= n_leaf_entries then
          report Internal_nodes src
            "leaf chain head %d outside the %d suffix slots" token
            n_leaf_entries
        else begin
          let rec follow slot =
            if Bytes.get visited_leaf slot <> '\000' then
              report Leaves (slot_off slot)
                "leaf slot %d reached twice (cycle or shared chain)" slot
            else begin
              Bytes.set visited_leaf slot '\001';
              let next = Buffer_pool.read_u32 t.pool t.leaves_h (slot_off slot) in
              if next <> sentinel then
                if next < 0 || next >= n_leaf_entries then
                  report Leaves (slot_off slot)
                    "chain link %d -> %d outside the %d suffix slots" slot next
                    n_leaf_entries
                else follow next
            end
          in
          follow token
        end
      | Clustered ->
        if token < 0 || token >= n_leaf_entries then
          report Internal_nodes src "leaf run head %d outside the %d entries"
            token n_leaf_entries
        else begin
          let rec run index =
            if index >= n_leaf_entries then
              report Leaves
                (slot_off (n_leaf_entries - 1))
                "leaf run overruns the component without a last-sibling flag"
            else begin
              if Bytes.get visited_leaf index <> '\000' then
                report Leaves (slot_off index)
                  "leaf entry %d belongs to two runs" index
              else Bytes.set visited_leaf index '\001';
              let word = Buffer_pool.read_u32 t.pool t.leaves_h (slot_off index) in
              let pos = word land depth_mask in
              if pos >= t.data_length then
                report Leaves (slot_off index)
                  "leaf entry %d: position %d outside the %d symbols" index pos
                  t.data_length;
              if word land last_flag = 0 then run (index + 1)
            end
          in
          run token
        end
  in
  (try
     (* Geometry first: if the headers disagree with the component
        sizes, say so instead of reading through garbage. *)
     if t.dir_count < 0 || internal_header_bytes + (4 * t.dir_count) > t.entries_offset
     then
       report Internal_nodes 8
         "root directory (%d entries) overlaps the entries region at %d"
         t.dir_count t.entries_offset;
     if t.entries_offset > t.internal_bytes then
       report Internal_nodes 12 "entries region offset %d beyond component end %d"
         t.entries_offset t.internal_bytes;
     if
       t.entries_offset <= t.internal_bytes
       && (t.internal_bytes - t.entries_offset) mod internal_entry_bytes <> 0
     then
       report Internal_nodes (entry_off n_entries)
         "entries region is not a whole number of %d-byte entries"
         internal_entry_bytes;
     (match t.layout with
     | Position_indexed ->
       if leaf_region <> leaf_entry_bytes * t.data_length then
         report Leaves 0
           "position-indexed leaf array holds %d entries for %d symbols"
           n_leaf_entries t.data_length
     | Clustered ->
       if leaf_region mod leaf_entry_bytes <> 0 then
         report Leaves 0 "clustered leaf region is not a whole number of entries");
     (* Every internal entry's fields, whether reachable or not. *)
     for i = 0 to n_entries - 1 do
       let depth, _last, start, first_internal, first_leaf = read_entry t i in
       if depth <= 0 then
         report Internal_nodes (entry_off i) "entry %d: non-positive depth %d" i
           depth;
       if start < 0 || start >= t.data_length then
         report Internal_nodes (entry_off i)
           "entry %d: label start %d outside the %d symbols" i start
           t.data_length;
       if first_internal <> sentinel && (first_internal < 0 || first_internal >= n_entries)
       then
         report Internal_nodes
           (entry_off i + 8)
           "entry %d: first internal child %d outside the %d entries" i
           first_internal n_entries;
       check_leaf_token ~src:(entry_off i + 12) first_leaf
     done;
     (* Sibling runs must terminate inside the entries region. *)
     for i = 0 to n_entries - 1 do
       let _, _, _, first_internal, _ = read_entry t i in
       if first_internal <> sentinel && first_internal >= 0 && first_internal < n_entries
       then begin
         let rec scan j steps =
           if j >= n_entries then
             report Internal_nodes
               (entry_off (n_entries - 1))
               "sibling run from entry %d overruns the component without a \
                last-sibling flag"
               first_internal
           else if steps <= n_entries then begin
             let _, last, _, _, _ = read_entry t j in
             if not last then scan (j + 1) (steps + 1)
           end
         in
         scan first_internal 0
       end
     done;
     (* Root directory entries. *)
     for i = 0 to t.dir_count - 1 do
       let off = internal_header_bytes + (4 * i) in
       if off + 4 <= t.entries_offset then begin
         let e = Buffer_pool.read_u32 t.pool t.internal_h off in
         if e land last_flag <> 0 then check_leaf_token ~src:off (e land depth_mask)
         else if e >= n_entries then
           report Internal_nodes off
             "directory entry %d: internal index %d outside the %d entries" i e
             n_entries
       end
     done
   with Check_stop -> ());
  List.rev !issues

(* ------------------------------------------------------------------ *)
(* Public open with verification levels.                                *)
(* ------------------------------------------------------------------ *)

let open_ ?(verify = Off) ~alphabet ~pool ~symbols ~internal ~leaves () =
  let t = open_internal ~verify ~alphabet ~pool ~symbols ~internal ~leaves in
  (match verify with
  | Off | Footer -> ()
  | Full -> (
    match check t with
    | [] -> ()
    | { component; offset; message } :: _ as issues ->
      raise
        (Corrupt
           {
             component = component_name component;
             message =
               Printf.sprintf "structural check found %d issue(s); first at \
                               offset %d: %s"
                 (List.length issues) offset message;
           })));
  t

let component_stats t = function
  | Symbols -> Buffer_pool.stats t.symbols_h
  | Internal_nodes -> Buffer_pool.stats t.internal_h
  | Leaves -> Buffer_pool.stats t.leaves_h

type size_report = {
  symbols_bytes : int;
  internal_bytes : int;
  leaves_bytes : int;
  total_bytes : int;
  bytes_per_symbol : float;
}

let size_report (t : t) =
  let total = t.symbols_bytes + t.internal_bytes + t.leaves_bytes in
  {
    symbols_bytes = t.symbols_bytes;
    internal_bytes = t.internal_bytes;
    leaves_bytes = t.leaves_bytes;
    total_bytes = total;
    bytes_per_symbol = float_of_int total /. float_of_int t.data_length;
  }
