(* Standard CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table-driven.
   Values are unsigned 32-bit quantities held in OCaml ints. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

type state = int

let start : state = 0xFFFFFFFF

let feed (s : state) buf pos len : state =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Crc32.feed: range outside the buffer";
  let table = Lazy.force table in
  let s = ref s in
  for i = pos to pos + len - 1 do
    s :=
      Array.unsafe_get table ((!s lxor Char.code (Bytes.unsafe_get buf i)) land 0xFF)
      lxor (!s lsr 8)
  done;
  !s

let finish (s : state) = s lxor 0xFFFFFFFF

let bytes b = finish (feed start b 0 (Bytes.length b))
let string s = bytes (Bytes.unsafe_of_string s)

let chunk = 65536

let of_device ?length device =
  let total = match length with Some l -> l | None -> Device.length device in
  let buf = Bytes.create (min chunk (max 1 total)) in
  let rec go s off =
    if off >= total then finish s
    else begin
      let n = min chunk (total - off) in
      let piece = if n = Bytes.length buf then buf else Bytes.create n in
      Device.pread device ~off ~buf:piece;
      go (feed s piece 0 n) (off + n)
    end
  in
  go start 0
