type op = Open | Read | Write | Flush | Close

type info = {
  path : string option;
  op : op;
  transient : bool;
  detail : string;
}

exception E of info

let op_name = function
  | Open -> "open"
  | Read -> "read"
  | Write -> "write"
  | Flush -> "flush"
  | Close -> "close"

let to_string { path; op; transient; detail } =
  Printf.sprintf "%s error%s: %s%s" (op_name op)
    (match path with Some p -> Printf.sprintf " on %s" p | None -> "")
    detail
    (if transient then " (transient)" else "")

let error ?path ?(transient = false) op detail =
  raise (E { path; op; transient; detail })
