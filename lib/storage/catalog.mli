(** Versioned root of the log-structured index (the {!Shard_manifest}
    idea generalized to an evolving index).

    A catalog file is immutable and names the complete index contents: a
    list of sealed {!segment}s in sequence order plus the live journal's
    file name. New versions are {!install}ed by writing [catalog.tmp]
    and renaming it to [catalog.<version>] — POSIX rename is atomic, so
    readers and crash recovery always find either the old catalog or the
    new one, never a torn root. Everything a catalog does not reference
    is garbage, collected on the next open.

    {!latest} treats the highest-numbered catalog file as authoritative:
    because installation is atomic, a catalog that fails verification is
    real corruption and raises {!Corrupt} rather than silently falling
    back to an older version of the index. *)

type segment = {
  name : string;  (** base name; components are [name ^ ".seqs"] etc. *)
  first_seq : int;
  num_seqs : int;
  symbols : int;  (** symbols + terminators, the segment data length *)
}

type t = {
  version : int;
  journal : string;  (** live journal file name *)
  segments : segment list;  (** in sequence order, contiguous from 0 *)
}

exception Corrupt of string

val filename : int -> string
(** ["catalog.%06d"] — zero-padded so the lexicographic order of
    directory listings matches version order. *)

val tmp_name : string
(** ["catalog.tmp"], the staging name {!install} renames from. *)

val of_filename : string -> int option
(** Parse a catalog file name back to its version. *)

val install : Vfs.t -> t -> unit
(** Write-temp / rename. After it returns the new version is the index
    root; a crash at any earlier boundary leaves the previous root
    live. *)

val read : Vfs.t -> string -> t
(** Read and fully verify one catalog file; {!Corrupt} on any damage or
    on a version/filename mismatch. *)

val latest : Vfs.t -> t option
(** The highest-versioned catalog, fully verified. [None] when no
    catalog file exists (no index in this directory). *)

val versions : Vfs.t -> int list
(** All catalog versions present, ascending (stale ones linger only
    until the next open's garbage collection). *)
