type t = { db : Bioseq.Database.t; root : Node.t }
type node = Node.t

let database t = t.db
let root t = t.root
let is_leaf = Node.is_leaf
let children = Node.children
let iter_children n f = Node.iter_children n f
let label (n : node) = (n.Node.start, n.Node.stop)
let label_start (n : node) = n.Node.start
let label_stop (n : node) = n.Node.stop
let positions (n : node) = n.Node.positions

let data t = Bioseq.Database.data t.db

let gather_children t node f =
  let data = Bioseq.Database.data t.db in
  (* Two passes over the sibling links: internal children first, then
     leaves — the canonical order the disk image stores and the search
     engines iterate. Labels of real children are non-empty and inside
     the database by construction, so the symbol read skips the bounds
     check; the [start < stop] guard keeps a degenerate label honest. *)
  let emit (c : Node.t) =
    let start = c.Node.start in
    let stop = c.Node.stop in
    let sym =
      if start < stop then Char.code (Bytes.unsafe_get data start) else -1
    in
    f c ~start ~stop ~sym
  in
  let rec internals = function
    | None -> ()
    | Some (c : Node.t) ->
      (match c.Node.first_child with Some _ -> emit c | None -> ());
      internals c.Node.next_sibling
  in
  let rec leaves = function
    | None -> ()
    | Some (c : Node.t) ->
      (match c.Node.first_child with None -> emit c | Some _ -> ());
      leaves c.Node.next_sibling
  in
  internals node.Node.first_child;
  leaves node.Node.first_child

(* The node type stores no parent link, so root-to-node paths are
   recovered by a physical-equality search from the root (debug-grade
   helpers; the search engines track paths themselves). *)
let path_labels t n =
  let exception Found of (int * int) list in
  let rec go acc node =
    if node == n then raise (Found (List.rev acc))
    else Node.iter_children node (fun child -> go (label child :: acc) child)
  in
  if Node.is_root n then []
  else
    try
      Node.iter_children t.root (fun child -> go [ label child ] child);
      invalid_arg "Tree.path_labels: node not in tree"
    with Found labels -> labels

let path_length t n =
  List.fold_left (fun acc (start, stop) -> acc + stop - start) 0 (path_labels t n)

let path_string t n =
  let alphabet = Bioseq.Database.alphabet t.db in
  path_labels t n
  |> List.map (fun (start, stop) ->
         String.init (stop - start) (fun i ->
             Bioseq.Alphabet.to_char alphabet
               (Bioseq.Database.code t.db (start + i))))
  |> String.concat ""

let subtree_positions n =
  (* Explicit work stack: degenerate inputs (e.g. one 100k-symbol run of
     a single character) make the tree as deep as the longest sequence,
     which would overflow native recursion. *)
  let acc = ref [] in
  let stack = ref [ n ] in
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | node :: rest ->
      stack := rest;
      acc := List.rev_append (positions node) !acc;
      Node.iter_children node (fun child -> stack := child :: !stack)
  done;
  !acc

let find_exact t pattern =
  let data = data t in
  let plen = Bytes.length pattern in
  if plen = 0 then invalid_arg "Tree.find_exact: empty pattern";
  (* Walk the pattern down from the root; [i] is the number of pattern
     symbols matched so far. *)
  let rec walk node i =
    if i >= plen then Some node
    else
      match Node.find_child ~data node (Char.code (Bytes.get pattern i)) with
      | None -> None
      | Some child ->
        let start, stop = label child in
        let rec consume j =
          (* Compare along the edge. *)
          if j >= plen then Some child
          else if start + j - i >= stop then walk child j
          else if Bytes.get data (start + j - i) = Bytes.get pattern j then
            consume (j + 1)
          else None
        in
        consume i
  in
  match walk t.root 0 with
  | None -> []
  | Some node -> List.sort Int.compare (subtree_positions node)

let fold t ~init ~f =
  (* Pre-order with an explicit stack (see [subtree_positions]). *)
  let acc = ref init in
  let stack = ref [] in
  let push_children depth node =
    (* Reverse so the leftmost child is processed first. *)
    let children = List.rev (Node.children node) in
    List.iter (fun child -> stack := (depth, child) :: !stack) children
  in
  push_children 0 t.root;
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | (depth, node) :: rest ->
      stack := rest;
      acc := f !acc ~depth node;
      push_children (depth + Node.label_length node) node
  done;
  !acc

type stats = {
  internal_nodes : int;
  leaves : int;
  occurrences : int;
  max_depth : int;
}

let stats t =
  fold t
    ~init:{ internal_nodes = 0; leaves = 0; occurrences = 0; max_depth = 0 }
    ~f:(fun acc ~depth node ->
      let depth_here = depth + Node.label_length node in
      let acc = { acc with max_depth = max acc.max_depth depth_here } in
      if is_leaf node then
        {
          acc with
          leaves = acc.leaves + 1;
          occurrences = acc.occurrences + List.length (positions node);
        }
      else { acc with internal_nodes = acc.internal_nodes + 1 })

let create db = { db; root = Node.make_root () }

let with_database t db =
  let old_data = Bioseq.Database.data t.db in
  let new_data = Bioseq.Database.data db in
  let old_len = Bioseq.Database.data_length t.db in
  let extends =
    Bioseq.Database.data_length db >= old_len
    && (old_data == new_data (* in-place append: same buffer, same prefix *)
       ||
       let rec eq i =
         i >= old_len
         || Bytes.get old_data i = Bytes.get new_data i && eq (i + 1)
       in
       eq 0)
  in
  if not extends then
    invalid_arg "Tree.with_database: new database does not extend the old";
  { db; root = t.root }

(* Length of the suffix starting at [pos]: up to and including the
   terminator of its sequence. *)
let suffix_stop t pos =
  let data = data t in
  let term = Char.chr (Bioseq.Alphabet.terminator (Bioseq.Database.alphabet t.db)) in
  let rec find i = if Bytes.get data i = term then i + 1 else find (i + 1) in
  find pos

let insert_suffix_naive t pos =
  let data = data t in
  let stop = suffix_stop t pos in
  (* Walk from the root matching data[pos..stop); [i] is the global
     index of the next unmatched suffix symbol. *)
  let rec walk node i =
    if i >= stop then
      (* Whole suffix matched: [node] must be a leaf with the same path;
         record the extra occurrence. *)
      node.Node.positions <- pos :: node.Node.positions
    else
      match Node.find_child ~data node (Char.code (Bytes.get data i)) with
      | None -> Node.add_child node (Node.make_leaf ~start:i ~stop ~position:pos)
      | Some child ->
        let cstart, cstop = label child in
        let rec consume j =
          (* [j] symbols of the edge matched so far. *)
          if cstart + j >= cstop then walk child (i + j)
          else if i + j >= stop then begin
            (* Suffix exhausted mid-edge: impossible for terminator-ended
               suffixes unless the edge continues past a terminator. *)
            assert false
          end
          else if Bytes.get data (cstart + j) = Bytes.get data (i + j) then
            consume (j + 1)
          else begin
            (* Mismatch at edge offset [j]: split. *)
            let split = Node.make_internal ~start:cstart ~stop:(cstart + j) in
            Node.replace_child node ~old_child:child ~new_child:split;
            child.Node.start <- cstart + j;
            Node.add_child split child;
            Node.add_child split
              (Node.make_leaf ~start:(i + j) ~stop ~position:pos)
          end
        in
        consume 0
  in
  walk t.root pos

let validate t =
  let db = t.db in
  let data = data t in
  let term = Bioseq.Alphabet.terminator (Bioseq.Database.alphabet db) in
  let errors = ref [] in
  let error fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  let total = Bioseq.Database.data_length db in
  (* Structural pass. *)
  let rec check_node depth node =
    let start, stop = label node in
    if start < 0 || stop > total || start >= stop then
      error "bad label [%d,%d)" start stop;
    (* The label must not continue past a terminator. *)
    for i = start to stop - 2 do
      if Char.code (Bytes.get data i) = term then
        error "label [%d,%d) crosses a terminator at %d" start stop i
    done;
    if is_leaf node then begin
      (match positions node with
      | [] -> error "leaf with no positions at [%d,%d)" start stop
      | ps ->
        List.iter
          (fun p ->
            if p < 0 || p >= total then error "leaf position %d out of range" p)
          ps);
      if Char.code (Bytes.get data (stop - 1)) <> term then
        error "leaf label [%d,%d) does not end with a terminator" start stop
    end
    else begin
      if positions node <> [] then error "internal node with positions";
      if Node.num_children node < 2 then
        error "internal node at [%d,%d) with < 2 children" start stop;
      let seen = Hashtbl.create 8 in
      Node.iter_children node (fun child ->
          let c = Char.code (Bytes.get data child.Node.start) in
          if Hashtbl.mem seen c then
            error "two children starting with symbol %d" c;
          Hashtbl.add seen c ();
          check_node (depth + Node.label_length node) child)
    end
  in
  Node.iter_children t.root (fun child -> check_node 0 child);
  (* Suffix-link pass: for every internal node carrying a link,
     path(link) must be path(node) minus its first symbol. Paths are
     materialized from any leaf descendant (position [p] at depth [d]
     means the path is data[p .. p+d)). Quadratic in node count, which
     is fine for a test-grade checker. *)
  let entries = ref [] in
  let rec collect depth node =
    if not (is_leaf node) then begin
      (match subtree_positions node with
      | p :: _ -> entries := (node, p, depth + Node.label_length node) :: !entries
      | [] -> ());
      Node.iter_children node (fun child ->
          collect (depth + Node.label_length node) child)
    end
  in
  Node.iter_children t.root (fun child -> collect 0 child);
  let find_entry target =
    List.find_opt (fun (node, _, _) -> node == target) !entries
  in
  List.iter
    (fun ((node : Node.t), p, depth) ->
      match node.Node.suffix_link with
      | None -> ()
      | Some link ->
        if Node.is_root link then begin
          if depth > 1 then
            error "suffix link of a depth-%d node points at the root" depth
        end
        else begin
          match find_entry link with
          | None -> error "suffix link points outside the tree's internal nodes"
          | Some (_, p', depth') ->
            if depth' <> depth - 1 then
              error "suffix link drops depth %d -> %d" depth depth'
            else begin
              let ok = ref true in
              for i = 0 to depth' - 1 do
                if Bytes.get data (p + 1 + i) <> Bytes.get data (p' + i) then
                  ok := false
              done;
              if not !ok then error "suffix link path mismatch at depth %d" depth
            end
        end)
    !entries;
  (* Coverage pass: every suffix must be findable and occurrence counts
     must add up to the number of suffixes. *)
  let expected = total in
  let s = stats t in
  if s.occurrences <> expected then
    error "tree stores %d occurrences, database has %d suffixes" s.occurrences
      expected;
  let ok = ref 0 in
  for pos = 0 to total - 1 do
    let stop = suffix_stop t pos in
    let pattern = Bytes.sub data pos (stop - pos) in
    if List.mem pos (find_exact t pattern) then incr ok
    else error "suffix at %d not found" pos
  done;
  ignore !ok;
  match !errors with
  | [] -> Ok ()
  | errs ->
    Error (String.concat "; " (List.rev (List.filteri (fun i _ -> i < 10) errs)))
