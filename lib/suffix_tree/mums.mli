(** Maximal Unique Matches between two sequences — the anchor structure
    of MUMmer-style whole-genome alignment, which the paper's §5 cites
    as another suffix-tree application ("suffix trees have also been
    applied for aligning whole genomes").

    A MUM of sequences [a] and [b] is a substring that occurs exactly
    once in each, and cannot be extended left or right without breaking
    that. On a generalized suffix tree of [{a; b}] these are exactly the
    internal nodes with one leaf occurrence per sequence (right-unique)
    whose occurrences are preceded by different symbols
    (left-maximal). *)

type mum = {
  length : int;
  pos_a : int;  (** 0-based offset in the first sequence *)
  pos_b : int;  (** 0-based offset in the second sequence *)
  text : string;
}

val find :
  ?min_length:int -> Bioseq.Sequence.t -> Bioseq.Sequence.t -> mum list
(** All MUMs of length at least [min_length] (default 3), sorted by
    position in the first sequence. Both sequences must share an
    alphabet. *)
