(** McCreight's linear-time suffix tree construction (JACM 1976) — the
    other classic algorithm the paper cites ([25]) next to Ukkonen's.

    Suffixes are inserted longest-first; each insertion locates its
    {e head} (the longest prefix already present) by following the
    previous head's parent's suffix link, {e rescanning} the known part
    by edge lengths alone, then {e scanning} the unknown tail symbol by
    symbol. Produces a tree structurally identical to {!Ukkonen.build}
    (verified by property tests), and exercises a completely different
    code path — useful as a cross-check and as a second reference for
    the disk serializer. *)

val build : Bioseq.Database.t -> Tree.t
(** O(total database length) expected; duplicate suffixes across
    sequences append occurrences to existing leaves, as in
    {!Ukkonen.build}. *)
