(** Online linear-time suffix tree construction (Ukkonen 1992).

    The generalized tree over a multi-sequence database is built by
    running Ukkonen's algorithm once per sequence into a shared tree,
    resetting the active point between sequences. Suffixes of a later
    sequence that already exist verbatim in the tree remain implicit at
    the end of that sequence's pass; they are resolved by appending
    their start positions to the existing leaves, so every database
    suffix is represented exactly once. *)

val build : Bioseq.Database.t -> Tree.t
(** O(total database length) expected; worst case adds the cost of the
    duplicate-suffix walks. *)

val extend : Tree.t -> Bioseq.Database.t -> Tree.t
(** [extend tree db] incrementally indexes the sequences [db] adds on
    top of [tree]'s database (built with {!Bioseq.Database.append}) —
    the paper's §6 "incremental updates" future work, for the in-memory
    tree. Cost is proportional to the added length only. The input
    [tree] shares nodes with the result and must not be used
    afterwards. *)
