(** Generalized suffix trees over a {!Bioseq.Database} (§2.3).

    A compact (PATRICIA) trie of every suffix of every database
    sequence. Each leaf carries the global start position(s) of the
    suffix it represents — several positions when identical suffixes
    occur in different sequences. Construction lives in {!Ukkonen} and
    {!Partitioned}; this module is the read-only view plus a naive
    insertion primitive shared by the builders. *)

type t

type node = Node.t
(** Node handles are only meaningful with the tree they came from. *)

(** {1 Basic accessors} *)

val database : t -> Bioseq.Database.t
val root : t -> node
val is_leaf : node -> bool
val children : node -> node list
val iter_children : node -> (node -> unit) -> unit

val gather_children :
  t -> node -> (node -> start:int -> stop:int -> sym:int -> unit) -> unit
(** Children in the canonical search order — internal children first,
    then leaves, each run in sibling order (the partition {!Export}
    lays out on disk) — with each child's label range and first symbol
    code delivered in one fused pass over the sibling links. [sym] is
    [-1] for an empty label. The search engines' expansion path uses
    this: one callback per child replaces a handful of per-child
    accessor calls. *)

val label : node -> int * int
(** Global range [ [start, stop) ) of the incoming edge label. *)

val label_start : node -> int
val label_stop : node -> int
(** The components of {!label} without the tuple — the search engine's
    per-child hot path reads these to stay allocation-free. *)

val positions : node -> int list
(** Suffix start positions; non-empty exactly for leaves. *)

val path_length : t -> node -> int
(** Number of symbols on the root-to-node path. O(depth). *)

val path_string : t -> node -> string
(** Decoded root-to-node path, terminators as ['$'] (for debugging). *)

(** {1 Queries} *)

val find_exact : t -> bytes -> int list
(** [find_exact t pattern] is the sorted list of global positions where
    the encoded [pattern] occurs as a substring (§2.3.1: walk the
    pattern from the root, then collect leaf descendants). *)

val subtree_positions : node -> int list
(** All suffix start positions under a node (unsorted). *)

(** {1 Whole-tree iteration and checks} *)

val fold : t -> init:'a -> f:('a -> depth:int -> node -> 'a) -> 'a
(** Depth-first pre-order over all nodes except the root; [depth] is the
    path length to the node's parent. *)

type stats = {
  internal_nodes : int;
  leaves : int;
  occurrences : int;  (** total leaf positions; equals #suffixes *)
  max_depth : int;  (** deepest path length in symbols *)
}

val stats : t -> stats

val validate : t -> (unit, string) result
(** Structural invariants: every edge label is a valid range within one
    sequence region; internal nodes have >= 2 children; sibling edges
    start with distinct symbols; suffix links drop exactly one leading
    symbol; every database suffix is reachable and leaf occurrence
    counts add up. O(total suffix length) plus a quadratic
    suffix-link pass — test use. *)

(** {1 Construction primitives (used by the builders)} *)

val create : Bioseq.Database.t -> t
(** A tree containing only the root. *)

val with_database : t -> Bioseq.Database.t -> t
(** [with_database t db] is the same tree structure viewed over a larger
    database. [db]'s concatenation must extend the old one (checked):
    every existing edge label and leaf position keeps its meaning. Used
    by incremental construction ({!Ukkonen.extend}); the old handle must
    not be used afterwards, since both share the mutable nodes. *)

val insert_suffix_naive : t -> int -> unit
(** [insert_suffix_naive t pos] inserts the suffix starting at global
    position [pos] (running to its sequence's terminator) by walking
    from the root — O(suffix length). Duplicate suffixes append [pos] to
    the existing leaf. *)
