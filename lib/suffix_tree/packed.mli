(** A flat, array-packed read-only image of a suffix tree.

    {!Tree} keeps one heap record per node, linked by sibling pointers:
    expanding a node means chasing 56-byte records scattered across the
    heap — at database scale the pointer walk, not the DP, dominates
    the search engines' expansion phase. This module re-lays the tree
    out once into a handful of flat [int] arrays, in the canonical
    child order (internal children first, then leaves — the order
    {!Export} writes and the search engines iterate):

    - every node's children occupy one contiguous run of the child
      arrays, so gathering a sibling block is a sequential scan with
      the first label symbol pre-resolved;
    - node handles are plain integers (non-negative = internal index,
      negative = leaf index), so search frontiers hold no pointers into
      the node heap and the GC never scans them;
    - every node's subtree leaves form one contiguous index range, so
      enumerating the suffix positions below a node is a flat slice
      scan instead of a recursive list walk.

    The packing is built once per tree ({!of_tree}, linear time and
    space) and shared read-only by any number of concurrent searches,
    exactly like the tree it mirrors. *)

type t

type node = int
(** Non-negative: internal-node index ({!root} is [0]). Negative: a
    leaf, encoded as [lnot leaf_index]. Handles are only meaningful
    with the packing they came from. *)

val of_tree : Tree.t -> t
(** Pack [tree]. The packing borrows the tree's database (it copies no
    symbol data); later in-place growth of the underlying tree is not
    reflected — pack again after an append. *)

val database : t -> Bioseq.Database.t
val root : t -> node
val is_leaf : node -> bool
val internal_nodes : t -> int
val leaves : t -> int

val label_start : t -> node -> int
(** Global start of the incoming edge label; [-1] at the root. *)

val label_stop : t -> node -> int
(** One past the label's last symbol; [0] at the root. Leaf labels end
    with their sequence terminator, as in {!Tree}. *)

val num_children : t -> node -> int

val iter_children : t -> node -> (node -> unit) -> unit
(** Children in canonical order (internal first, then leaves). *)

val gather_children :
  t -> node -> (node -> start:int -> stop:int -> sym:int -> unit) -> unit
(** {!iter_children} fused with each child's label range and first
    symbol code — one sequential scan of the child arrays. [sym] is
    [-1] for an empty label (never produced by {!of_tree} on a valid
    tree). *)

val iter_positions : t -> node -> (int -> unit) -> unit
(** Suffix start positions of all leaf occurrences below the node: a
    contiguous slice scan. Order is the packing's leaf DFS order. *)
