(** Raw mutable suffix-tree nodes (internal to this library).

    Children form a singly-linked sibling list; edge labels are
    [ [start, stop) ) ranges into the database concatenation. The OASIS
    library accesses trees through {!Tree}'s read-only view instead. *)

type t = {
  mutable start : int;  (** global start of the incoming edge label; -1 at root *)
  mutable stop : int;  (** one past the label's last symbol; 0 at root *)
  mutable first_child : t option;
  mutable next_sibling : t option;
  mutable suffix_link : t option;
  mutable positions : int list;
      (** suffix start positions; non-empty exactly for leaves *)
}

val make_root : unit -> t
val make_leaf : start:int -> stop:int -> position:int -> t
val make_internal : start:int -> stop:int -> t
val is_leaf : t -> bool
val is_root : t -> bool
val label_length : t -> int

val find_child : data:bytes -> t -> int -> t option
(** [find_child ~data node code] is the child whose edge label begins
    with symbol [code]. *)

val add_child : t -> t -> unit
(** Prepend a child to the sibling list. *)

val replace_child : t -> old_child:t -> new_child:t -> unit
(** Substitute [old_child] (found by physical equality) with
    [new_child]; the old child's sibling link is cleared. Raises
    [Invalid_argument] if [old_child] is not a child. *)

val iter_children : t -> (t -> unit) -> unit
val fold_children : t -> init:'a -> f:('a -> t -> 'a) -> 'a
val children : t -> t list
val num_children : t -> int
