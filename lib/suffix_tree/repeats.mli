(** Repeat analysis on the suffix tree — the REPuter-style application
    the paper's §5 cites ("suffix trees have also been applied ... for
    exploring repeated structures in genomic sequences").

    A repeated substring of length [>= min_length] corresponds to an
    internal node of path depth [>= min_length]; its occurrences are the
    node's leaf positions. {!maximal} keeps only right-maximal repeats
    that are also left-maximal (extending either way breaks at least one
    occurrence pair). *)

type repeat = {
  length : int;  (** repeat length in symbols *)
  positions : int list;  (** sorted global start positions, >= 2 of them *)
  text : string;  (** the repeated substring *)
}

val all : ?min_length:int -> Tree.t -> repeat list
(** Every right-maximal repeat (i.e. every internal node) of length at
    least [min_length] (default 2), sorted by decreasing length then
    text. Occurrences may overlap. *)

val maximal : ?min_length:int -> Tree.t -> repeat list
(** The subset of {!all} that is also left-maximal: at least two
    occurrences are preceded by different symbols (or one starts a
    sequence). *)
