let label_string t node =
  let db = Tree.database t in
  let alphabet = Bioseq.Database.alphabet db in
  let start, stop = Tree.label node in
  String.init (stop - start) (fun i ->
      Bioseq.Alphabet.to_char alphabet (Bioseq.Database.code db (start + i)))

let node_name counter node =
  if Tree.is_leaf node then
    Printf.sprintf "%dL" (List.fold_left min max_int (Tree.positions node))
  else begin
    let n = !counter in
    incr counter;
    Printf.sprintf "%dN" n
  end

(* Children sorted by first edge symbol for a stable rendering. *)
let sorted_children t node =
  let db = Tree.database t in
  List.sort
    (fun a b ->
      compare
        (Bioseq.Database.code db (fst (Tree.label a)))
        (Bioseq.Database.code db (fst (Tree.label b))))
    (Tree.children node)

let to_ascii t =
  let buf = Buffer.create 1024 in
  let counter = ref 1 in
  Buffer.add_string buf "0N\n";
  let rec go prefix node =
    let children = sorted_children t node in
    let n = List.length children in
    List.iteri
      (fun i child ->
        let last = i = n - 1 in
        let connector = if last then "`-- " else "+-- " in
        let name = node_name counter child in
        Buffer.add_string buf
          (Printf.sprintf "%s%s%s -> %s%s\n" prefix connector
             (label_string t child) name
             (if Tree.is_leaf child && List.length (Tree.positions child) > 1
              then
                Printf.sprintf " (also at %s)"
                  (String.concat ","
                     (List.map string_of_int
                        (List.tl (List.sort compare (Tree.positions child)))))
              else ""));
        let extension = if last then "    " else "|   " in
        go (prefix ^ extension) child)
      children
  in
  go "" (Tree.root t);
  Buffer.contents buf

let to_dot ?(name = "suffix_tree") t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  Buffer.add_string buf "  node [fontname=\"monospace\"];\n";
  let counter = ref 1 in
  let id = ref 0 in
  let fresh () =
    incr id;
    Printf.sprintf "n%d" !id
  in
  let root_id = fresh () in
  Buffer.add_string buf
    (Printf.sprintf "  %s [shape=circle, label=\"0N\"];\n" root_id);
  let rec go parent_id node =
    let node_id = fresh () in
    let display = node_name counter node in
    if Tree.is_leaf node then
      Buffer.add_string buf
        (Printf.sprintf "  %s [shape=box, label=\"%s\\npos %s\"];\n" node_id
           display
           (String.concat ","
              (List.map string_of_int (List.sort compare (Tree.positions node)))))
    else
      Buffer.add_string buf
        (Printf.sprintf "  %s [shape=circle, label=\"%s\"];\n" node_id display);
    Buffer.add_string buf
      (Printf.sprintf "  %s -> %s [label=\"%s\"];\n" parent_id node_id
         (label_string t node));
    List.iter (go node_id) (sorted_children t node)
  in
  List.iter (go root_id) (sorted_children t (Tree.root t));
  Buffer.add_string buf "}\n";
  Buffer.contents buf
