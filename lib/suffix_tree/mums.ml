type mum = { length : int; pos_a : int; pos_b : int; text : string }

let find ?(min_length = 3) a b =
  if min_length < 1 then invalid_arg "Mums.find: min_length < 1";
  let db = Bioseq.Database.make [ a; b ] in
  let t = Ukkonen.build db in
  let alphabet = Bioseq.Database.alphabet db in
  let term = Bioseq.Alphabet.terminator alphabet in
  let b_start = Bioseq.Database.seq_start db 1 in
  let code = Bioseq.Database.code db in
  let preceding pos = if pos = 0 then term else code (pos - 1) in
  let mums =
    Tree.fold t ~init:[] ~f:(fun acc ~depth node ->
        if Tree.is_leaf node then begin
          (* A leaf holding one occurrence from each sequence is the
             shared-suffix case: both continuations are the sequence
             end, so the match (terminator stripped) is right-maximal.
             The leaf edge must contain a real symbol — when it is just
             the terminator, the candidate string equals the parent's
             path, whose (internal-node) occurrence count decides
             uniqueness instead. *)
          let start, stop = Tree.label node in
          let length = depth + stop - start - 1 (* strip the terminator *) in
          if length < min_length || stop - start < 2 then acc
          else
            match List.sort compare (Tree.positions node) with
            | [ pa; pb ] when pa < b_start && pb >= b_start ->
              let ca = preceding pa and cb = preceding pb in
              if ca <> cb || ca = term then begin
                let text =
                  String.init length (fun i ->
                      Bioseq.Alphabet.to_char alphabet (code (pa + i)))
                in
                { length; pos_a = pa; pos_b = pb - b_start; text } :: acc
              end
              else acc
            | _ -> acc
        end
        else begin
          let start, stop = Tree.label node in
          let length = depth + stop - start in
          if length < min_length then acc
          else
            (* Right-unique in each sequence: exactly two occurrences,
               one per sequence. Being an internal node already makes
               the string right-maximal (two distinct continuations). *)
            match List.sort compare (Tree.subtree_positions node) with
            | [ pa; pb ] when pa < b_start && pb >= b_start ->
              (* Left-maximal: the preceding symbols differ (or one
                 occurrence starts its sequence). *)
              let ca = preceding pa and cb = preceding pb in
              if ca <> cb || ca = term then begin
                let text =
                  String.init length (fun i ->
                      Bioseq.Alphabet.to_char alphabet (code (pa + i)))
                in
                { length; pos_a = pa; pos_b = pb - b_start; text } :: acc
              end
              else acc
            | _ -> acc
        end)
  in
  List.sort (fun x y -> compare x.pos_a y.pos_a) mums
