(** Suffix arrays over a {!Bioseq.Database} — the index behind QUASAR
    (Burkhardt et al., RECOMB 1999), which the paper discusses as the
    main filtering alternative to its suffix tree (§5).

    The array holds every suffix start position of the database
    concatenation, sorted lexicographically (the terminator code sorts
    above every real symbol, and suffixes implicitly end at their
    sequence terminator, mirroring {!Tree}'s generalized-tree view). *)

type t

val build : Bioseq.Database.t -> t
(** Prefix-doubling construction, O(n log n) time, O(n) space. *)

val database : t -> Bioseq.Database.t

val length : t -> int
(** Number of suffixes (= database data length). *)

val suffix_at : t -> int -> int
(** [suffix_at t rank] is the start position of the [rank]-th smallest
    suffix. *)

val rank_of : t -> int -> int
(** Inverse permutation: the rank of the suffix starting at a
    position. *)

val interval : t -> bytes -> (int * int) option
(** [interval t pattern] is the half-open rank range [ [lo, hi) ) of
    suffixes having [pattern] as a prefix, or [None] when the pattern
    does not occur. O(|pattern| log n). *)

val find : t -> bytes -> int list
(** Sorted start positions of all occurrences of the encoded pattern
    (like {!Tree.find_exact}). *)

val lcp_array : t -> int array
(** Kasai's longest-common-prefix array: [lcp.(i)] is the LCP of the
    suffixes at ranks [i-1] and [i] ([lcp.(0) = 0]). Computed on demand
    and cached. *)
