(* Classic Ukkonen with the active-point formulation, run over one
   sequence region [seq_start, seq_stop) at a time ([seq_stop] is one
   past the terminator). Leaves are created with their final edge end
   ([seq_stop]-relative) immediately; during construction the effective
   edge length is capped at the current phase position. *)

let build_sequence t seq_index =
  let db = Tree.database t in
  let root = Tree.root t in
  let data = Bioseq.Database.data db in
  let code i = Char.code (Bytes.unsafe_get data i) in
  begin
    let seq_start = Bioseq.Database.seq_start db seq_index in
    let seq_len = Bioseq.Sequence.length (Bioseq.Database.seq db seq_index) in
    let seq_stop = seq_start + seq_len + 1 (* include terminator *) in
    let active_node = ref root in
    let active_edge = ref 0 in
    let active_length = ref 0 in
    let remainder = ref 0 in
    for pos = seq_start to seq_stop - 1 do
      let c = code pos in
      incr remainder;
      let last_new_node = ref None in
      let link_pending target =
        (match !last_new_node with
        | Some n -> n.Node.suffix_link <- Some target
        | None -> ());
        last_new_node := None
      in
      let continue = ref true in
      while !continue && !remainder > 0 do
        if !active_length = 0 then active_edge := pos;
        match Node.find_child ~data !active_node (code !active_edge) with
        | None ->
          (* Rule 2 from a node: new leaf child. *)
          let position = pos - !remainder + 1 in
          Node.add_child !active_node
            (Node.make_leaf ~start:pos ~stop:seq_stop ~position);
          link_pending !active_node;
          (* Advance to the next (shorter) suffix. *)
          decr remainder;
          if !active_node == root && !active_length > 0 then begin
            decr active_length;
            active_edge := pos - !remainder + 1
          end
          else if not (!active_node == root) then
            active_node :=
              (match !active_node.Node.suffix_link with
              | Some link -> link
              | None -> root)
        | Some next ->
          let edge_stop = min next.Node.stop (pos + 1) in
          let edge_len = edge_stop - next.Node.start in
          if !active_length >= edge_len then begin
            (* Skip/count: walk down a full edge. *)
            active_node := next;
            active_edge := !active_edge + edge_len;
            active_length := !active_length - edge_len
          end
          else if code (next.Node.start + !active_length) = c then begin
            (* Rule 3: the extension is already implicit; end the phase. *)
            link_pending !active_node;
            incr active_length;
            continue := false
          end
          else begin
            (* Rule 2 with split. *)
            let split =
              Node.make_internal ~start:next.Node.start
                ~stop:(next.Node.start + !active_length)
            in
            Node.replace_child !active_node ~old_child:next ~new_child:split;
            next.Node.start <- next.Node.start + !active_length;
            Node.add_child split next;
            let position = pos - !remainder + 1 in
            Node.add_child split
              (Node.make_leaf ~start:pos ~stop:seq_stop ~position);
            link_pending split;
            last_new_node := Some split;
            decr remainder;
            if !active_node == root && !active_length > 0 then begin
              decr active_length;
              active_edge := pos - !remainder + 1
            end
            else if not (!active_node == root) then
              active_node :=
                (match !active_node.Node.suffix_link with
                | Some link -> link
                | None -> root)
          end
      done
    done;
    (* Suffixes still implicit after the terminator phase are exact
       duplicates of paths from earlier sequences; record their
       occurrences on the existing leaves. *)
    if !remainder > 0 then
      for j = seq_stop - !remainder to seq_stop - 1 do
        Tree.insert_suffix_naive t j
      done
  end

let build db =
  let t = Tree.create db in
  for i = 0 to Bioseq.Database.num_sequences db - 1 do
    build_sequence t i
  done;
  t

let extend tree db =
  let old_n = Bioseq.Database.num_sequences (Tree.database tree) in
  let t = Tree.with_database tree db in
  for i = old_n to Bioseq.Database.num_sequences db - 1 do
    build_sequence t i
  done;
  t
