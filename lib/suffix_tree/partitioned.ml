(* Bucket index of a suffix: radix value of its first [prefix_len]
   symbols (terminator included as a digit). Suffixes shorter than
   [prefix_len] are handled separately. *)

let partitions ~prefix_len db =
  if prefix_len < 1 then invalid_arg "Partitioned.partitions: prefix_len < 1";
  let data = Bioseq.Database.data db in
  let total = Bioseq.Database.data_length db in
  let term = Bioseq.Alphabet.terminator (Bioseq.Database.alphabet db) in
  let radix = term + 1 in
  let num_buckets =
    let rec pow acc n = if n = 0 then acc else pow (acc * radix) (n - 1) in
    pow 1 prefix_len
  in
  let buckets = Array.make num_buckets [] in
  let short = ref [] in
  for pos = total - 1 downto 0 do
    (* Walking backwards keeps each bucket list in increasing position
       order. *)
    let rec digest i acc =
      if i = prefix_len then Some acc
      else if pos + i >= total then None
      else
        let c = Char.code (Bytes.get data (pos + i)) in
        let acc = (acc * radix) + c in
        if c = term && i < prefix_len - 1 then None else digest (i + 1) acc
    in
    match digest 0 0 with
    | Some h -> buckets.(h) <- pos :: buckets.(h)
    | None -> short := pos :: !short
  done;
  (buckets, !short)

let build ?(prefix_len = 1) db =
  let t = Tree.create db in
  let buckets, short = partitions ~prefix_len db in
  Array.iter (fun bucket -> List.iter (Tree.insert_suffix_naive t) bucket) buckets;
  List.iter (Tree.insert_suffix_naive t) short;
  t
