type repeat = { length : int; positions : int list; text : string }

let text_of t pos len =
  let db = Tree.database t in
  let alphabet = Bioseq.Database.alphabet db in
  String.init len (fun i ->
      Bioseq.Alphabet.to_char alphabet (Bioseq.Database.code db (pos + i)))

let compare_repeat a b =
  if a.length <> b.length then compare b.length a.length
  else compare a.text b.text

let all ?(min_length = 2) t =
  if min_length < 1 then invalid_arg "Repeats.all: min_length < 1";
  let repeats =
    Tree.fold t ~init:[] ~f:(fun acc ~depth node ->
        if Tree.is_leaf node then acc
        else begin
          let start, stop = Tree.label node in
          let length = depth + stop - start in
          if length < min_length then acc
          else begin
            let positions =
              List.sort compare (Tree.subtree_positions node)
            in
            (* Every internal node has >= 2 leaf descendants by the
               compact-tree invariant. *)
            { length; positions; text = text_of t (List.hd positions) length }
            :: acc
          end
        end)
  in
  List.sort compare_repeat repeats

let left_maximal t r =
  (* Left-maximal: not every occurrence is preceded by the same symbol.
     An occurrence at a sequence start (or preceded by a terminator)
     cannot be extended left at all. *)
  let db = Tree.database t in
  let term = Bioseq.Alphabet.terminator (Bioseq.Database.alphabet db) in
  let preceding pos = if pos = 0 then term else Bioseq.Database.code db (pos - 1) in
  match r.positions with
  | [] | [ _ ] -> false
  | first :: rest ->
    let c0 = preceding first in
    c0 = term || List.exists (fun p -> preceding p <> c0 || preceding p = term) rest

let maximal ?min_length t = List.filter (left_maximal t) (all ?min_length t)
