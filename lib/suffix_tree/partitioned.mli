(** Prefix-partitioned suffix tree construction, after Hunt, Atkinson
    and Irving (VLDB 2001) — the technique the paper uses to build trees
    larger than memory (§3.4.1).

    Suffixes are partitioned by a fixed-length prefix; each partition's
    subtree is built independently by one pass over the database, so in
    Hunt's setting only one subtree needs to be memory-resident at a
    time. This implementation keeps the whole result in memory
    (partitions are grafted under a shared root) — it serves as a
    structural cross-check of {!Ukkonen.build} and as the reference for
    the partition bookkeeping; a fully external build would additionally
    stream each finished partition into {!Storage}'s disk image. *)

val build : ?prefix_len:int -> Bioseq.Database.t -> Tree.t
(** [prefix_len] defaults to 1. Suffixes shorter than [prefix_len]
    (terminator included) form their own partitions. The resulting tree
    is structurally identical to {!Ukkonen.build}'s (up to child
    order). *)

val partitions : prefix_len:int -> Bioseq.Database.t -> int list array * int list
(** [partitions ~prefix_len db] is [(buckets, short)]: [buckets.(h)]
    lists the suffix start positions whose length->= prefix_len] prefix
    hashes to bucket [h] (radix order), and [short] lists suffixes
    shorter than [prefix_len]. Exposed for the storage layer and
    tests. *)
