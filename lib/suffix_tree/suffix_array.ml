type t = {
  db : Bioseq.Database.t;
  sa : int array; (* rank -> suffix start position *)
  ranks : int array; (* suffix start position -> rank *)
  mutable lcp : int array option;
}

(* Prefix doubling: sort by the first [2k] symbols given ranks for the
   first [k]. Suffixes are compared over the raw concatenation, which
   agrees with terminator-truncated comparison on every prefix that
   matters for pattern lookup. *)
let build db =
  let data = Bioseq.Database.data db in
  let n = Bioseq.Database.data_length db in
  let sa = Array.init n Fun.id in
  let rank = Array.init n (fun i -> Char.code (Bytes.get data i)) in
  let tmp = Array.make n 0 in
  let k = ref 1 in
  let continue = ref (n > 1) in
  while !continue do
    let key i =
      (rank.(i), if i + !k < n then rank.(i + !k) else -1)
    in
    Array.sort
      (fun a b ->
        let (a1, a2) = key a and (b1, b2) = key b in
        if a1 <> b1 then Int.compare a1 b1 else Int.compare a2 b2)
      sa;
    (* Re-rank. *)
    tmp.(sa.(0)) <- 0;
    for r = 1 to n - 1 do
      tmp.(sa.(r)) <-
        (tmp.(sa.(r - 1)) + if key sa.(r) = key sa.(r - 1) then 0 else 1)
    done;
    Array.blit tmp 0 rank 0 n;
    if rank.(sa.(n - 1)) = n - 1 then continue := false
    else k := !k * 2
  done;
  { db; sa; ranks = rank; lcp = None }

let database t = t.db
let length t = Array.length t.sa
let suffix_at t r = t.sa.(r)
let rank_of t pos = t.ranks.(pos)

(* Compare the suffix at [pos] against [pattern], looking only at the
   first [|pattern|] symbols: negative / zero (pattern is a prefix) /
   positive. *)
let compare_prefix t pos pattern =
  let data = Bioseq.Database.data t.db in
  let n = Bioseq.Database.data_length t.db and plen = Bytes.length pattern in
  let rec go i =
    if i = plen then 0
    else if pos + i >= n then -1
    else
      let c = Char.compare (Bytes.get data (pos + i)) (Bytes.get pattern i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let interval t pattern =
  if Bytes.length pattern = 0 then invalid_arg "Suffix_array.interval: empty pattern";
  let n = length t in
  (* First rank whose suffix compares >= / > the pattern prefix. *)
  let search above =
    let rec bs lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        let c = compare_prefix t t.sa.(mid) pattern in
        if c < 0 || (above && c = 0) then bs (mid + 1) hi else bs lo mid
    in
    bs 0 n
  in
  let lo = search false and hi = search true in
  if lo >= hi then None else Some (lo, hi)

let find t pattern =
  match interval t pattern with
  | None -> []
  | Some (lo, hi) ->
    List.sort Int.compare (List.init (hi - lo) (fun i -> t.sa.(lo + i)))

(* Kasai et al. linear-time LCP construction. *)
let lcp_array t =
  match t.lcp with
  | Some lcp -> lcp
  | None ->
    let data = Bioseq.Database.data t.db in
    let n = length t in
    let lcp = Array.make n 0 in
    let h = ref 0 in
    for pos = 0 to n - 1 do
      let r = t.ranks.(pos) in
      if r > 0 then begin
        let prev = t.sa.(r - 1) in
        while
          pos + !h < n
          && prev + !h < n
          && Bytes.get data (pos + !h) = Bytes.get data (prev + !h)
        do
          incr h
        done;
        lcp.(r) <- !h;
        if !h > 0 then decr h
      end
      else h := 0
    done;
    t.lcp <- Some lcp;
    lcp
