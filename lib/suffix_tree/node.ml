type t = {
  mutable start : int;
  mutable stop : int;
  mutable first_child : t option;
  mutable next_sibling : t option;
  mutable suffix_link : t option;
  mutable positions : int list;
}

let make_root () =
  {
    start = -1;
    stop = 0;
    first_child = None;
    next_sibling = None;
    suffix_link = None;
    positions = [];
  }

let make_leaf ~start ~stop ~position =
  {
    start;
    stop;
    first_child = None;
    next_sibling = None;
    suffix_link = None;
    positions = [ position ];
  }

let make_internal ~start ~stop =
  {
    start;
    stop;
    first_child = None;
    next_sibling = None;
    suffix_link = None;
    positions = [];
  }

(* Pattern match, not [= None]: the polymorphic equality would be an
   out-of-line [caml_equal] call on the hottest tree predicate. *)
let is_leaf n =
  (match n.first_child with None -> true | Some _ -> false) && n.start >= 0
let is_root n = n.start < 0
let label_length n = n.stop - n.start

let find_child ~data node code =
  let rec scan = function
    | None -> None
    | Some child ->
      if Char.code (Bytes.unsafe_get data child.start) = code then Some child
      else scan child.next_sibling
  in
  scan node.first_child

let add_child parent child =
  child.next_sibling <- parent.first_child;
  parent.first_child <- Some child

let replace_child parent ~old_child ~new_child =
  let rec scan prev = function
    | None -> invalid_arg "Node.replace_child: not a child"
    | Some child when child == old_child ->
      new_child.next_sibling <- child.next_sibling;
      old_child.next_sibling <- None;
      (match prev with
      | None -> parent.first_child <- Some new_child
      | Some p -> p.next_sibling <- Some new_child)
    | Some child -> scan (Some child) child.next_sibling
  in
  scan None parent.first_child

let iter_children parent f =
  let rec go = function
    | None -> ()
    | Some child ->
      f child;
      go child.next_sibling
  in
  go parent.first_child

let fold_children parent ~init ~f =
  let acc = ref init in
  iter_children parent (fun child -> acc := f !acc child);
  !acc

let children parent =
  List.rev (fold_children parent ~init:[] ~f:(fun acc c -> c :: acc))

let num_children parent = fold_children parent ~init:0 ~f:(fun acc _ -> acc + 1)
