(* McCreight's algorithm, generalized over a multi-sequence database by
   running one pass per sequence into the shared tree (cf. Ukkonen).

   State between iterations: the previous head node, its parent, and
   both their path depths. Invariant (Gusfield §6.1): every internal
   node except possibly the previous head already has a suffix link.

   Rescan correctness across sequences: if path x·alpha·beta exists in
   the tree then some already-inserted suffix starts with it, and the
   suffix one position later — also already inserted, possibly from an
   earlier sequence — starts with alpha·beta, so the rescanned path is
   guaranteed present and only first symbols need comparing. *)

let build db =
  let t = Tree.create db in
  let root = Tree.root t in
  let data = Bioseq.Database.data db in
  let code i = Char.code (Bytes.unsafe_get data i) in
  let build_sequence seq_index =
    let seq_start = Bioseq.Database.seq_start db seq_index in
    let seq_len = Bioseq.Sequence.length (Bioseq.Database.seq db seq_index) in
    let seq_stop = seq_start + seq_len + 1 (* include terminator *) in
    (* Split [child]'s incoming edge after [len] symbols, returning the
       new internal node. *)
    let split_edge parent child len =
      let mid =
        Node.make_internal ~start:child.Node.start ~stop:(child.Node.start + len)
      in
      Node.replace_child parent ~old_child:child ~new_child:mid;
      child.Node.start <- child.Node.start + len;
      Node.add_child mid child;
      mid
    in
    (* Scan: from [node] at [depth], match the suffix [i]'s symbols
       data[i+depth .. stop) symbol by symbol. Returns the head for
       suffix [i] — (parent, parent_depth, head, head_depth) — after
       attaching the new leaf (or recording a duplicate occurrence). *)
    let scan i node depth stop =
      let rec go parent parent_depth node depth =
        let probe = i + depth in
        if probe >= stop then begin
          (* Whole suffix already present: record the occurrence. *)
          node.Node.positions <- i :: node.Node.positions;
          (parent, parent_depth, node, depth)
        end
        else
          match Node.find_child ~data node (code probe) with
          | None ->
            Node.add_child node (Node.make_leaf ~start:probe ~stop ~position:i);
            (parent, parent_depth, node, depth)
          | Some child ->
            let el = Node.label_length child in
            (* Compare along the edge. *)
            let rec walk j =
              if j = el then `Descend
              else if i + depth + j >= stop then `Mismatch j
              else if code (child.Node.start + j) = code (i + depth + j) then
                walk (j + 1)
              else `Mismatch j
            in
            (match walk 1 (* first symbol matched via find_child *) with
            | `Descend -> go node depth child (depth + el)
            | `Mismatch j ->
              let mid = split_edge node child j in
              let head_depth = depth + j in
              if i + head_depth >= stop then
                (* Suffix exhausted exactly at the split point: only
                   possible when the edge continued past this suffix's
                   terminator, which labels never do. *)
                assert false
              else
                Node.add_child mid
                  (Node.make_leaf ~start:(i + head_depth) ~stop ~position:i);
              (node, depth, mid, head_depth))
      in
      go root 0 node depth
    in
    (* Rescan: from [node] at [depth], walk down the path
       data[lo .. hi) comparing only first symbols (the path is known to
       exist). Returns (parent, parent_depth, node_or_split, depth,
       created) where [created] says the end fell mid-edge and a node
       was split there. *)
    let rec rescan parent parent_depth node depth lo hi =
      if lo >= hi then (parent, parent_depth, node, depth, false)
      else
        match Node.find_child ~data node (code lo) with
        | None ->
          (* The rescan path must exist. *)
          assert false
        | Some child ->
          let el = Node.label_length child in
          if el <= hi - lo then
            rescan node depth child (depth + el) (lo + el) hi
          else begin
            let mid = split_edge node child (hi - lo) in
            (node, depth, mid, depth + (hi - lo), true)
          end
    in
    (* Iterations. head/parent state carries depths. *)
    let head = ref root and head_depth = ref 0 in
    let parent = ref root and parent_depth = ref 0 in
    for i = seq_start to seq_stop - 1 do
      if !head == root then begin
        let p, pd, h, hd = scan i root 0 seq_stop in
        parent := p;
        parent_depth := pd;
        head := h;
        head_depth := hd
      end
      else begin
        (* beta = the previous head's incoming edge label. *)
        let beta_lo = !head.Node.start and beta_hi = !head.Node.stop in
        let from_node, from_depth, lo =
          if !parent == root then
            (* path(head) = x·beta'; rescan beta' from the root. *)
            (root, 0, beta_lo + 1)
          else
            (* Follow the parent's suffix link (invariant: present). *)
            let s_u =
              match !parent.Node.suffix_link with
              | Some link -> link
              | None -> assert false
            in
            (s_u, !parent_depth - 1, beta_lo)
        in
        let p, pd, w, wd, created =
          rescan root 0 from_node from_depth lo beta_hi
        in
        !head.Node.suffix_link <- Some w;
        if created then begin
          (* w is head(i): the unseen part starts right below it. *)
          let stop = seq_stop in
          if i + wd >= stop then assert false
          else
            Node.add_child w
              (Node.make_leaf ~start:(i + wd) ~stop ~position:i);
          parent := p;
          parent_depth := pd;
          head := w;
          head_depth := wd
        end
        else begin
          let p2, pd2, h, hd = scan i w wd seq_stop in
          (* scan starts its parent tracking at the root; when it never
             descended, the true parent is the rescan's. *)
          if h == w then begin
            parent := p;
            parent_depth := pd
          end
          else begin
            parent := p2;
            parent_depth := pd2
          end;
          head := h;
          head_depth := hd
        end
      end
    done
  in
  for i = 0 to Bioseq.Database.num_sequences db - 1 do
    build_sequence i
  done;
  t
