type t = {
  db : Bioseq.Database.t;
  (* Internal node [i]: label [node_start.(i), node_stop.(i)), children
     in the child arrays at [ch_off.(i) .. ch_off.(i+1) - 1], subtree
     leaves [leaf_lo.(i) .. leaf_hi.(i) - 1]. *)
  node_start : int array;
  node_stop : int array;
  ch_off : int array;
  leaf_lo : int array;
  leaf_hi : int array;
  (* Child slot [k]: handle, label range and first symbol code of one
     child, runs stored in canonical order (internal first, then
     leaves, each in sibling order). *)
  c_handle : int array;
  c_start : int array;
  c_stop : int array;
  c_sym : int array;
  (* Leaf [l]: label [leaf_start.(l), leaf_stop.(l)), suffix positions
     at [pos.(pos_off.(l) .. pos_off.(l+1) - 1)]. Leaves are numbered
     in DFS order, so a subtree's positions are one contiguous run. *)
  leaf_start : int array;
  leaf_stop : int array;
  pos_off : int array;
  pos : int array;
}

type node = int

let database t = t.db
let root _ = 0
let is_leaf (n : node) = n < 0
let internal_nodes t = Array.length t.node_start
let leaves t = Array.length t.leaf_start

let label_start t n = if n >= 0 then t.node_start.(n) else t.leaf_start.(lnot n)
let label_stop t n = if n >= 0 then t.node_stop.(n) else t.leaf_stop.(lnot n)
let num_children t n = if n < 0 then 0 else t.ch_off.(n + 1) - t.ch_off.(n)

let iter_children t n f =
  if n >= 0 then
    for k = t.ch_off.(n) to t.ch_off.(n + 1) - 1 do
      f t.c_handle.(k)
    done

let gather_children t n f =
  if n >= 0 then begin
    let handle = t.c_handle
    and start = t.c_start
    and stop = t.c_stop
    and sym = t.c_sym in
    for k = t.ch_off.(n) to t.ch_off.(n + 1) - 1 do
      f
        (Array.unsafe_get handle k)
        ~start:(Array.unsafe_get start k)
        ~stop:(Array.unsafe_get stop k)
        ~sym:(Array.unsafe_get sym k)
    done
  end

let iter_positions t n f =
  let lo, hi =
    if n < 0 then
      let l = lnot n in
      (l, l + 1)
    else (t.leaf_lo.(n), t.leaf_hi.(n))
  in
  for p = t.pos_off.(lo) to t.pos_off.(hi) - 1 do
    f t.pos.(p)
  done

let of_tree tree =
  let db = Tree.database tree in
  let data = Bioseq.Database.data db in
  (* Pass 1: count internals, leaves, child slots and positions. An
     explicit stack keeps degenerate (path-shaped) trees from
     overflowing native recursion. *)
  let ni = ref 0 and nl = ref 0 and np = ref 0 in
  let stack = ref [ Tree.root tree ] in
  let continue = ref true in
  while !continue do
    match !stack with
    | [] -> continue := false
    | n :: rest ->
      stack := rest;
      if Node.is_leaf n then begin
        incr nl;
        np := !np + List.length n.Node.positions
      end
      else begin
        incr ni;
        Node.iter_children n (fun c -> stack := c :: !stack)
      end
  done;
  let ni = !ni and nl = !nl and np = !np in
  let slots = ni - 1 + nl in
  let p =
    {
      db;
      node_start = Array.make ni 0;
      node_stop = Array.make ni 0;
      ch_off = Array.make (ni + 1) 0;
      leaf_lo = Array.make ni 0;
      leaf_hi = Array.make ni 0;
      c_handle = Array.make (max slots 1) 0;
      c_start = Array.make (max slots 1) 0;
      c_stop = Array.make (max slots 1) 0;
      c_sym = Array.make (max slots 1) 0;
      leaf_start = Array.make (max nl 1) 0;
      leaf_stop = Array.make (max nl 1) 0;
      pos_off = Array.make (nl + 1) 0;
      pos = Array.make (max np 1) 0;
    }
  in
  (* Pass 2: preorder DFS in canonical child order (internal children
     first, then leaves). Internal ids and leaf numbers are assigned at
     visit time, so every subtree occupies one contiguous range of
     both. Each stack item carries the child slot its handle backpatches
     ([-1] for the root). *)
  let next_internal = ref 0
  and next_leaf = ref 0
  and next_slot = ref 0
  and next_pos = ref 0 in
  let stack = ref [ (Tree.root tree, -1) ] in
  let pack_leaf (n : Node.t) slot =
    let l = !next_leaf in
    incr next_leaf;
    p.leaf_start.(l) <- n.Node.start;
    p.leaf_stop.(l) <- n.Node.stop;
    p.pos_off.(l) <- !next_pos;
    List.iter
      (fun q ->
        p.pos.(!next_pos) <- q;
        incr next_pos)
      n.Node.positions;
    if slot >= 0 then p.c_handle.(slot) <- lnot l
  in
  let continue = ref true in
  while !continue do
    match !stack with
    | [] -> continue := false
    | (n, slot) :: rest ->
      stack := rest;
      if Node.is_leaf n then pack_leaf n slot
      else begin
        let i = !next_internal in
        incr next_internal;
        if slot >= 0 then p.c_handle.(slot) <- i;
        p.node_start.(i) <- n.Node.start;
        p.node_stop.(i) <- n.Node.stop;
        p.leaf_lo.(i) <- !next_leaf;
        (* Reserve this node's child run and queue the children. The
           run is filled back to front while pushing, so the canonical
           order pops (and packs) first. *)
        let internals = ref [] and leafs = ref [] in
        Node.iter_children n (fun c ->
            if Node.is_leaf c then leafs := c :: !leafs
            else internals := c :: !internals);
        let count = List.length !internals + List.length !leafs in
        let first_slot = !next_slot in
        next_slot := first_slot + count;
        p.ch_off.(i) <- first_slot;
        let fill = ref (first_slot + count - 1) in
        let queue (c : Node.t) =
          let slot = !fill in
          decr fill;
          p.c_start.(slot) <- c.Node.start;
          p.c_stop.(slot) <- c.Node.stop;
          p.c_sym.(slot) <-
            (if c.Node.start < c.Node.stop then
               Char.code (Bytes.unsafe_get data c.Node.start)
             else -1);
          stack := (c, slot) :: !stack
        in
        (* [internals]/[leafs] are already reversed sibling runs, so
           queueing leaves first then internals pushes the exact
           reverse of canonical order. *)
        List.iter queue !leafs;
        List.iter queue !internals
      end
  done;
  p.ch_off.(ni) <- !next_slot;
  p.pos_off.(nl) <- !next_pos;
  (* [leaf_hi]: with preorder internal ids and DFS leaf numbering, node
     [i]'s subtree leaves end where the subtree of the next preorder
     node outside it begins. A linear reverse sweep recovers it without
     sentinels: every internal node's subtree is a contiguous id range,
     so [leaf_hi] of [i] is the max of its children's — computed here
     from the child runs, right to left (children have larger ids than
     their parent in preorder). *)
  for i = ni - 1 downto 0 do
    let hi = ref p.leaf_lo.(i) in
    for k = p.ch_off.(i) to p.ch_off.(i + 1) - 1 do
      let h = p.c_handle.(k) in
      let child_hi = if h < 0 then lnot h + 1 else p.leaf_hi.(h) in
      if child_hi > !hi then hi := child_hi
    done;
    p.leaf_hi.(i) <- !hi
  done;
  p
