(** Suffix-tree visualization — renders trees the way the paper's
    Figure 2 draws them, for debugging and pedagogy.

    Nodes print as [<n>N] (internal, arbitrary numbering in visit order)
    or [<p>L] (leaf, numbered by suffix start position), matching the
    paper's labeling convention. *)

val to_ascii : Tree.t -> string
(** Indented tree listing, one node per line, children ordered by their
    first edge symbol:

    {v
    0N
    +-- A -> 1N
    |   +-- CG... -> 3L
    v} *)

val to_dot : ?name:string -> Tree.t -> string
(** Graphviz DOT source: internal nodes as circles, leaves as boxes
    labeled with their suffix positions, edges labeled with their
    strings (terminator as ["$"]). *)
