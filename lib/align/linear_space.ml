let neg_inf = Scoring.Submat.neg_inf

(* All helpers work on plain code arrays. *)

let codes_of s =
  Array.init (Bioseq.Sequence.length s) (Bioseq.Sequence.get s)

let rev_array a =
  let n = Array.length a in
  Array.init n (fun i -> a.(n - 1 - i))

(* Local (reset) scan returning (best score, query_end, target_end),
   ends exclusive, ties toward the smallest target end then the
   smallest query end (matching Smith_waterman.align). *)
let local_best ~score ~g q t =
  let m = Array.length q and n = Array.length t in
  let h = Array.make (m + 1) 0 in
  let best = ref 0 and bq = ref 0 and bt = ref 0 in
  for j = 1 to n do
    let diag = ref h.(0) in
    for i = 1 to m do
      let repl = !diag + score q.(i - 1) t.(j - 1) in
      diag := h.(i);
      let cell = max 0 (max repl (max (h.(i) - g) (h.(i - 1) - g))) in
      h.(i) <- cell;
      if cell > !best then begin
        best := cell;
        bq := i;
        bt := j
      end
    done
  done;
  (!best, !bq, !bt)

(* Global (Needleman-Wunsch) score row: nw_row q t .(j) = best global
   score of q against t's prefix of length j. *)
let nw_row ~score ~g q t =
  let m = Array.length q and n = Array.length t in
  let row = Array.make (n + 1) 0 in
  for j = 0 to n do
    row.(j) <- -g * j
  done;
  for i = 1 to m do
    let diag = ref row.(0) in
    row.(0) <- -g * i;
    for j = 1 to n do
      let repl = !diag + score q.(i - 1) t.(j - 1) in
      diag := row.(j);
      row.(j) <- max repl (max (row.(j) - g) (row.(j - 1) - g))
    done
  done;
  row

(* Small-case global alignment by full matrix (used at recursion
   leaves). *)
let nw_small ~score ~g q t =
  let m = Array.length q and n = Array.length t in
  let h = Array.make_matrix (m + 1) (n + 1) 0 in
  for i = 1 to m do
    h.(i).(0) <- -g * i
  done;
  for j = 1 to n do
    h.(0).(j) <- -g * j
  done;
  for i = 1 to m do
    for j = 1 to n do
      h.(i).(j) <-
        max
          (h.(i - 1).(j - 1) + score q.(i - 1) t.(j - 1))
          (max (h.(i - 1).(j) - g) (h.(i).(j - 1) - g))
    done
  done;
  let rec back i j acc =
    if i = 0 && j = 0 then acc
    else if i > 0 && j > 0 && h.(i).(j) = h.(i - 1).(j - 1) + score q.(i - 1) t.(j - 1)
    then back (i - 1) (j - 1) (Alignment.Replace :: acc)
    else if i > 0 && h.(i).(j) = h.(i - 1).(j) - g then
      back (i - 1) j (Alignment.Insert :: acc)
    else back i (j - 1) (Alignment.Delete :: acc)
  in
  back m n []

(* Hirschberg: global alignment operations of q vs t in O(n) space. *)
let rec hirschberg ~score ~g q t =
  let m = Array.length q and n = Array.length t in
  if m = 0 then List.init n (fun _ -> Alignment.Delete)
  else if n = 0 then List.init m (fun _ -> Alignment.Insert)
  else if m <= 2 || n <= 2 then nw_small ~score ~g q t
  else begin
    let mid = m / 2 in
    let upper = Array.sub q 0 mid and lower = Array.sub q mid (m - mid) in
    let forward = nw_row ~score ~g upper t in
    let backward = nw_row ~score ~g (rev_array lower) (rev_array t) in
    let split = ref 0 and best = ref neg_inf in
    for j = 0 to n do
      let v = forward.(j) + backward.(n - j) in
      if v > !best then begin
        best := v;
        split := j
      end
    done;
    hirschberg ~score ~g upper (Array.sub t 0 !split)
    @ hirschberg ~score ~g lower (Array.sub t !split (n - !split))
  end

let align ~matrix ~gap ~query ~target =
  if not (Scoring.Gap.is_linear gap) then
    invalid_arg "Linear_space.align: fixed (linear) gap model only";
  let g = -Scoring.Gap.extend_score gap in
  let score a b = Scoring.Submat.score matrix a b in
  let q = codes_of query and t = codes_of target in
  let best, qe, te = local_best ~score ~g q t in
  if best = 0 then Alignment.empty
  else begin
    (* Reverse scan over the prefixes ending at (qe, te): the best local
       alignment of the reversed prefixes that reaches [best] ends at
       the (reversed) start point. *)
    let qr = rev_array (Array.sub q 0 qe) and tr = rev_array (Array.sub t 0 te) in
    let m = Array.length qr and n = Array.length tr in
    let h = Array.make (m + 1) 0 in
    let qs = ref 0 and ts = ref 0 in
    (try
       for j = 1 to n do
         let diag = ref h.(0) in
         for i = 1 to m do
           let repl = !diag + score qr.(i - 1) tr.(j - 1) in
           diag := h.(i);
           let cell = max 0 (max repl (max (h.(i) - g) (h.(i - 1) - g))) in
           h.(i) <- cell;
           if cell = best then begin
             qs := qe - i;
             ts := te - j;
             raise Exit
           end
         done
       done;
       assert false
     with Exit -> ());
    let ops =
      hirschberg ~score ~g
        (Array.sub q !qs (qe - !qs))
        (Array.sub t !ts (te - !ts))
    in
    {
      Alignment.score = best;
      query_start = !qs;
      query_stop = qe;
      target_start = !ts;
      target_stop = te;
      ops;
    }
  end
