let neg_inf = Scoring.Submat.neg_inf

let score_only ~matrix ~gap ~band ~diagonal ~query ~target =
  if band < 0 then invalid_arg "Banded.score_only: band < 0";
  let m = Bioseq.Sequence.length query
  and n = Bioseq.Sequence.length target in
  let flat = Scoring.Submat.scores_flat matrix in
  let dim = Scoring.Submat.dim matrix in
  let go = Scoring.Gap.open_score gap and ge = Scoring.Gap.extend_score gap in
  let h = Array.make (m + 1) 0 in
  let f = Array.make (m + 1) neg_inf in
  let best = ref 0 in
  for j = 1 to n do
    let c = Bioseq.Sequence.get target (j - 1) in
    (* Rows within the band for this column. *)
    let i_lo = max 1 (j - diagonal - band) in
    let i_hi = min m (j - diagonal + band) in
    if i_lo <= i_hi then begin
      let diag = ref h.(i_lo - 1) in
      let egap = ref neg_inf in
      for i = i_lo to i_hi do
        let qi = Bioseq.Sequence.get query (i - 1) in
        f.(i) <- max (h.(i) + go) (f.(i) + ge);
        egap := max (h.(i - 1) + go) (!egap + ge);
        let repl = !diag + Array.unsafe_get flat ((qi * dim) + c) in
        diag := h.(i);
        let cell = max 0 (max repl (max !egap f.(i))) in
        h.(i) <- cell;
        if cell > !best then best := cell
      done;
      (* Reset the cells at the band edges so values cannot leak back in
         when the band slides. *)
      if i_lo - 1 >= 1 then h.(i_lo - 1) <- 0;
      if i_hi + 1 <= m then begin
        h.(i_hi + 1) <- 0;
        f.(i_hi + 1) <- neg_inf
      end
    end
  done;
  !best

let covering_band ~query ~target =
  Bioseq.Sequence.length query + Bioseq.Sequence.length target
