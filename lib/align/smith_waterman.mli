(** The Smith-Waterman local-alignment algorithm (§2.2) — the accurate
    baseline OASIS is compared against.

    All variants share the recurrence of Equation 1; gap handling is
    Gotoh-style, which degenerates to the paper's fixed model for
    {!Scoring.Gap.Linear}. Alignments never cross sequence boundaries:
    terminator columns reset the dynamic program. *)

type stats = {
  columns : int;  (** target positions processed (the Figure 4 metric) *)
  cells : int;  (** matrix cells computed *)
}

type hit = {
  seq_index : int;
  score : int;
  query_stop : int;  (** one past the last aligned query symbol *)
  target_stop : int;  (** one past the last aligned symbol, sequence-local *)
}

val align :
  matrix:Scoring.Submat.t ->
  gap:Scoring.Gap.t ->
  query:Bioseq.Sequence.t ->
  target:Bioseq.Sequence.t ->
  Alignment.t
(** Best local alignment with full traceback; O(m*n) space. Ties are
    broken toward the smallest target end, then smallest query end. *)

val score_only :
  matrix:Scoring.Submat.t ->
  gap:Scoring.Gap.t ->
  query:Bioseq.Sequence.t ->
  target:Bioseq.Sequence.t ->
  int
(** Best local score; O(m) space. *)

val dp_matrix :
  matrix:Scoring.Submat.t ->
  gap:Scoring.Gap.t ->
  query:Bioseq.Sequence.t ->
  target:Bioseq.Sequence.t ->
  int array array
(** The full [ (m+1) x (n+1) ] score matrix [H] (row 0 / column 0 are
    the zero borders), as in the paper's Table 2. Intended for tests and
    pedagogy. *)

val search :
  matrix:Scoring.Submat.t ->
  gap:Scoring.Gap.t ->
  query:Bioseq.Sequence.t ->
  db:Bioseq.Database.t ->
  min_score:int ->
  hit list * stats
(** Scan the whole database; return the single strongest alignment per
    sequence (the paper's reporting convention, §3), keeping those with
    [score >= min_score], ordered by decreasing score (ties by sequence
    index). *)

val search_profile :
  profile:Scoring.Pssm.t ->
  gap:Scoring.Gap.t ->
  db:Bioseq.Database.t ->
  min_score:int ->
  hit list * stats
(** {!search} with position-specific scores: column [i] of the DP uses
    [Scoring.Pssm.score profile (i-1)] instead of a matrix row. With
    [Scoring.Pssm.of_query] this equals {!search} exactly
    (property-tested). *)

val best_in_region :
  matrix:Scoring.Submat.t ->
  gap:Scoring.Gap.t ->
  query:Bioseq.Sequence.t ->
  data:bytes ->
  lo:int ->
  hi:int ->
  int * int * int
(** [best_in_region ~data ~lo ~hi] scans the concatenation slice
    [ [lo, hi) ) and returns [(score, query_stop, target_stop)] of the
    best local alignment ending inside it ([target_stop] is global,
    exclusive); [(0, 0, lo)] when nothing positive exists. Terminator
    codes inside the slice reset the DP, so alignments never cross
    sequence boundaries. Used by filter-and-refine searches (QUASAR) to
    verify candidate regions. *)

val hit_alignment :
  matrix:Scoring.Submat.t ->
  gap:Scoring.Gap.t ->
  query:Bioseq.Sequence.t ->
  db:Bioseq.Database.t ->
  hit ->
  Alignment.t
(** Recover the full alignment for a database hit (re-runs the DP on the
    hit's sequence). Target coordinates are sequence-local. *)
