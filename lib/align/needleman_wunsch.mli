(** Needleman-Wunsch global alignment.

    Not used by the OASIS search itself, but part of the alignment
    substrate: the examples use it to compare the full extent of two
    sequences, and the test suite uses it as an independent oracle for
    score bookkeeping. Linear and affine gaps are both supported. *)

val align :
  matrix:Scoring.Submat.t ->
  gap:Scoring.Gap.t ->
  query:Bioseq.Sequence.t ->
  target:Bioseq.Sequence.t ->
  Alignment.t
(** Best end-to-end alignment (spans are always the full sequences). *)

val score_only :
  matrix:Scoring.Submat.t ->
  gap:Scoring.Gap.t ->
  query:Bioseq.Sequence.t ->
  target:Bioseq.Sequence.t ->
  int
