(** Local alignment with traceback in linear space (Hirschberg 1975).

    {!Smith_waterman.align} materializes the full O(m*n) matrices; for
    long pairs that is prohibitive. This module recovers an optimal
    local alignment in O(min-side) memory: a forward scan finds the best
    end point, a reverse scan finds a matching start point, and a
    Hirschberg divide-and-conquer reconstructs the global alignment of
    the bounded segment (whose optimum necessarily equals the local
    score).

    Fixed (linear) gap model only — the recursive score-splitting
    argument needs per-symbol additive gap costs. The resulting
    alignment's score always equals {!Smith_waterman.align}'s; the
    operation list may differ when several optimal alignments exist
    (both rescore to the optimum, property-tested). *)

val align :
  matrix:Scoring.Submat.t ->
  gap:Scoring.Gap.t ->
  query:Bioseq.Sequence.t ->
  target:Bioseq.Sequence.t ->
  Alignment.t
(** Raises [Invalid_argument] on an affine gap model. *)
