type stats = { columns : int; cells : int }

type hit = {
  seq_index : int;
  score : int;
  query_stop : int;
  target_stop : int;
}

let neg_inf = Scoring.Submat.neg_inf

(* Gotoh matrices: h = best ending anywhere, e = best ending with an
   Insert run (query symbol vs gap), f = best ending with a Delete run
   (gap vs target symbol). *)
let gotoh ~matrix ~gap ~query ~target =
  let m = Bioseq.Sequence.length query
  and n = Bioseq.Sequence.length target in
  let q = Bioseq.Sequence.codes query
  and t = Bioseq.Sequence.codes target in
  let flat = Scoring.Submat.scores_flat matrix in
  let dim = Scoring.Submat.dim matrix in
  let go = Scoring.Gap.open_score gap
  and ge = Scoring.Gap.extend_score gap in
  let h = Array.make_matrix (m + 1) (n + 1) 0 in
  let e = Array.make_matrix (m + 1) (n + 1) neg_inf in
  let f = Array.make_matrix (m + 1) (n + 1) neg_inf in
  for i = 1 to m do
    let qi = Char.code (Bytes.unsafe_get q (i - 1)) in
    let row = qi * dim in
    for j = 1 to n do
      let tj = Char.code (Bytes.unsafe_get t (j - 1)) in
      e.(i).(j) <- max (h.(i - 1).(j) + go) (e.(i - 1).(j) + ge);
      f.(i).(j) <- max (h.(i).(j - 1) + go) (f.(i).(j - 1) + ge);
      let repl = h.(i - 1).(j - 1) + Array.unsafe_get flat (row + tj) in
      h.(i).(j) <- max 0 (max repl (max e.(i).(j) f.(i).(j)))
    done
  done;
  (h, e, f)

let dp_matrix ~matrix ~gap ~query ~target =
  let h, _, _ = gotoh ~matrix ~gap ~query ~target in
  h

let find_max h m n =
  let best = ref 0 and bi = ref 0 and bj = ref 0 in
  (* Scan targets first so ties break toward the smallest target end. *)
  for j = 1 to n do
    for i = 1 to m do
      if h.(i).(j) > !best then begin
        best := h.(i).(j);
        bi := i;
        bj := j
      end
    done
  done;
  (!best, !bi, !bj)

let align ~matrix ~gap ~query ~target =
  let m = Bioseq.Sequence.length query
  and n = Bioseq.Sequence.length target in
  let h, e, f = gotoh ~matrix ~gap ~query ~target in
  let best, bi, bj = find_max h m n in
  if best = 0 then Alignment.empty
  else begin
    let go = Scoring.Gap.open_score gap
    and ge = Scoring.Gap.extend_score gap in
    let score a b = Scoring.Submat.score matrix a b in
    let qget i = Bioseq.Sequence.get query (i - 1)
    and tget j = Bioseq.Sequence.get target (j - 1) in
    (* Traceback as a three-state machine over (H, E, F). *)
    let rec back state i j ops =
      match state with
      | `H ->
        if h.(i).(j) = 0 then (i, j, ops)
        else if h.(i).(j) = h.(i - 1).(j - 1) + score (qget i) (tget j) then
          back `H (i - 1) (j - 1) (Alignment.Replace :: ops)
        else if h.(i).(j) = e.(i).(j) then back `E i j ops
        else begin
          assert (h.(i).(j) = f.(i).(j));
          back `F i j ops
        end
      | `E ->
        (* Insert consumes a query symbol. *)
        if e.(i).(j) = h.(i - 1).(j) + go then
          back `H (i - 1) j (Alignment.Insert :: ops)
        else begin
          assert (e.(i).(j) = e.(i - 1).(j) + ge);
          back `E (i - 1) j (Alignment.Insert :: ops)
        end
      | `F ->
        (* Delete consumes a target symbol. *)
        if f.(i).(j) = h.(i).(j - 1) + go then
          back `H i (j - 1) (Alignment.Delete :: ops)
        else begin
          assert (f.(i).(j) = f.(i).(j - 1) + ge);
          back `F i (j - 1) (Alignment.Delete :: ops)
        end
    in
    let qstart, tstart, ops = back `H bi bj [] in
    {
      Alignment.score = best;
      query_start = qstart;
      query_stop = bi;
      target_start = tstart;
      target_stop = bj;
      ops;
    }
  end

(* Column-vector Gotoh over an encoded target fragment; calls [report]
   with (score, query_stop, target_index) for every cell. [reset] is
   called to restart at sequence boundaries. [rows] is the per-query-row
   scoring table ([m * dim], row-major). *)
let make_rows_scanner ~rows ~dim ~m ~gap =
  let go = Scoring.Gap.open_score gap
  and ge = Scoring.Gap.extend_score gap in
  let h = Array.make (m + 1) 0 in
  (* Delete-run scores (gap vs target), kept per query row across
     columns: F[i][j] = max (H[i][j-1] + go, F[i][j-1] + ge). *)
  let fdel = Array.make (m + 1) neg_inf in
  let reset () =
    Array.fill h 0 (m + 1) 0;
    Array.fill fdel 0 (m + 1) neg_inf
  in
  let step tj report =
    (* One target symbol: update the column in place. [egap] is the
       Insert-run score within this column:
       E[i][j] = max (H[i-1][j] + go, E[i-1][j] + ge). *)
    let diag = ref h.(0) in
    let egap = ref neg_inf in
    for i = 1 to m do
      fdel.(i) <- max (h.(i) + go) (fdel.(i) + ge);
      egap := max (h.(i - 1) + go) (!egap + ge);
      let repl = !diag + Array.unsafe_get rows (((i - 1) * dim) + tj) in
      diag := h.(i);
      let cell = max 0 (max repl (max !egap fdel.(i))) in
      h.(i) <- cell;
      if cell > 0 then report cell i
    done
  in
  (reset, step)

let make_scanner ~matrix ~gap ~query =
  let profile = Scoring.Pssm.of_query ~matrix query in
  make_rows_scanner
    ~rows:(Scoring.Pssm.rows_flat profile)
    ~dim:(Scoring.Pssm.dim profile)
    ~m:(Scoring.Pssm.length profile) ~gap

let score_only ~matrix ~gap ~query ~target =
  let reset, step = make_scanner ~matrix ~gap ~query in
  reset ();
  let best = ref 0 in
  let t = Bioseq.Sequence.codes target in
  for j = 0 to Bytes.length t - 1 do
    step (Char.code (Bytes.unsafe_get t j)) (fun cell _ ->
        if cell > !best then best := cell)
  done;
  !best

let search_rows ~rows ~dim ~m ~gap ~db ~min_score =
  let reset, step = make_rows_scanner ~rows ~dim ~m ~gap in
  reset ();
  let term = Bioseq.Alphabet.terminator (Bioseq.Database.alphabet db) in
  let data = Bioseq.Database.data db in
  let n = Bioseq.Database.data_length db in
  let columns = ref 0 in
  let hits = ref [] in
  let seq_index = ref 0 in
  let seq_begin = ref 0 in
  (* Best cell within the current sequence. *)
  let best = ref 0 and best_q = ref 0 and best_t = ref 0 in
  for pos = 0 to n - 1 do
    let c = Char.code (Bytes.unsafe_get data pos) in
    if c = term then begin
      if !best >= min_score then
        hits :=
          {
            seq_index = !seq_index;
            score = !best;
            query_stop = !best_q;
            target_stop = !best_t - !seq_begin;
          }
          :: !hits;
      reset ();
      best := 0;
      incr seq_index;
      seq_begin := pos + 1
    end
    else begin
      incr columns;
      step c (fun cell i ->
          if cell > !best then begin
            best := cell;
            best_q := i;
            best_t := pos + 1
          end)
    end
  done;
  let hits =
    List.sort
      (fun a b ->
        if a.score <> b.score then compare b.score a.score
        else compare a.seq_index b.seq_index)
      !hits
  in
  (hits, { columns = !columns; cells = !columns * m })

let search ~matrix ~gap ~query ~db ~min_score =
  let profile = Scoring.Pssm.of_query ~matrix query in
  search_rows
    ~rows:(Scoring.Pssm.rows_flat profile)
    ~dim:(Scoring.Pssm.dim profile)
    ~m:(Scoring.Pssm.length profile) ~gap ~db ~min_score

let search_profile ~profile ~gap ~db ~min_score =
  if
    Bioseq.Alphabet.name (Scoring.Pssm.alphabet profile)
    <> Bioseq.Alphabet.name (Bioseq.Database.alphabet db)
  then invalid_arg "Smith_waterman.search_profile: alphabet mismatch";
  search_rows
    ~rows:(Scoring.Pssm.rows_flat profile)
    ~dim:(Scoring.Pssm.dim profile)
    ~m:(Scoring.Pssm.length profile) ~gap ~db ~min_score

let best_in_region ~matrix ~gap ~query ~data ~lo ~hi =
  let reset, step = make_scanner ~matrix ~gap ~query in
  reset ();
  let term = Bioseq.Alphabet.terminator (Scoring.Submat.alphabet matrix) in
  let best = ref 0 and best_q = ref 0 and best_t = ref lo in
  for pos = lo to hi - 1 do
    let c = Char.code (Bytes.unsafe_get data pos) in
    if c = term then reset ()
    else
      step c (fun cell i ->
          if cell > !best then begin
            best := cell;
            best_q := i;
            best_t := pos + 1
          end)
  done;
  (!best, !best_q, !best_t)

let hit_alignment ~matrix ~gap ~query ~db hit =
  let target = Bioseq.Database.seq db hit.seq_index in
  align ~matrix ~gap ~query ~target
