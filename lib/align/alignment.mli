(** Local/global alignment results.

    Following the paper's terminology (§2.1): a {e replacement} aligns a
    query symbol with a target symbol; an {e insertion} skips a query
    symbol (query symbol against gap); a {e deletion} skips a target
    symbol (gap against target symbol). *)

type op =
  | Replace  (** query symbol vs target symbol (match or mismatch) *)
  | Insert  (** query symbol vs gap *)
  | Delete  (** gap vs target symbol *)

type t = {
  score : int;
  query_start : int;  (** offset of the first aligned query symbol *)
  query_stop : int;  (** one past the last aligned query symbol *)
  target_start : int;
  target_stop : int;
  ops : op list;  (** leftmost operation first *)
}

val empty : t
(** The empty alignment (score 0, no operations). *)

val query_span : t -> int
val target_span : t -> int

val rescore :
  matrix:Scoring.Submat.t ->
  gap:Scoring.Gap.t ->
  query:Bioseq.Sequence.t ->
  target:Bioseq.Sequence.t ->
  t ->
  int
(** Recompute the score implied by [ops] against the sequences; raises
    [Invalid_argument] if the operations do not consume exactly the
    spans recorded in [t]. Used to validate DP tracebacks. *)

val identity : query:Bioseq.Sequence.t -> target:Bioseq.Sequence.t -> t -> float
(** Fraction of [Replace] ops that are exact matches, over all ops. *)

val cigar : t -> string
(** Compact CIGAR-like string, e.g. ["5R1I3R"] ([R]eplace, [I]nsert,
    [D]elete). *)

val pp :
  query:Bioseq.Sequence.t ->
  target:Bioseq.Sequence.t ->
  Format.formatter ->
  t ->
  unit
(** Three-row rendering: query row, midline ([|] match, [.] mismatch,
    space on gaps), target row. *)
