let neg_inf = Scoring.Submat.neg_inf

let gotoh ~matrix ~gap ~query ~target =
  let m = Bioseq.Sequence.length query
  and n = Bioseq.Sequence.length target in
  let go = Scoring.Gap.open_score gap
  and ge = Scoring.Gap.extend_score gap in
  let score a b = Scoring.Submat.score matrix a b in
  let qget i = Bioseq.Sequence.get query (i - 1)
  and tget j = Bioseq.Sequence.get target (j - 1) in
  let h = Array.make_matrix (m + 1) (n + 1) neg_inf in
  let e = Array.make_matrix (m + 1) (n + 1) neg_inf in
  let f = Array.make_matrix (m + 1) (n + 1) neg_inf in
  h.(0).(0) <- 0;
  for i = 1 to m do
    e.(i).(0) <- go + ((i - 1) * ge);
    h.(i).(0) <- e.(i).(0)
  done;
  for j = 1 to n do
    f.(0).(j) <- go + ((j - 1) * ge);
    h.(0).(j) <- f.(0).(j)
  done;
  for i = 1 to m do
    for j = 1 to n do
      e.(i).(j) <- max (h.(i - 1).(j) + go) (e.(i - 1).(j) + ge);
      f.(i).(j) <- max (h.(i).(j - 1) + go) (f.(i).(j - 1) + ge);
      let repl = h.(i - 1).(j - 1) + score (qget i) (tget j) in
      h.(i).(j) <- max repl (max e.(i).(j) f.(i).(j))
    done
  done;
  (h, e, f)

let score_only ~matrix ~gap ~query ~target =
  let h, _, _ = gotoh ~matrix ~gap ~query ~target in
  h.(Bioseq.Sequence.length query).(Bioseq.Sequence.length target)

let align ~matrix ~gap ~query ~target =
  let m = Bioseq.Sequence.length query
  and n = Bioseq.Sequence.length target in
  let h, e, f = gotoh ~matrix ~gap ~query ~target in
  let go = Scoring.Gap.open_score gap
  and ge = Scoring.Gap.extend_score gap in
  let score a b = Scoring.Submat.score matrix a b in
  let qget i = Bioseq.Sequence.get query (i - 1)
  and tget j = Bioseq.Sequence.get target (j - 1) in
  let rec back state i j ops =
    if i = 0 && j = 0 then ops
    else
      match state with
      | `H ->
        if i > 0 && j > 0 && h.(i).(j) = h.(i - 1).(j - 1) + score (qget i) (tget j)
        then back `H (i - 1) (j - 1) (Alignment.Replace :: ops)
        else if i > 0 && h.(i).(j) = e.(i).(j) then back `E i j ops
        else begin
          assert (j > 0 && h.(i).(j) = f.(i).(j));
          back `F i j ops
        end
      | `E ->
        if h.(i - 1).(j) + go = e.(i).(j) then
          back `H (i - 1) j (Alignment.Insert :: ops)
        else begin
          assert (i > 1 && e.(i - 1).(j) + ge = e.(i).(j));
          back `E (i - 1) j (Alignment.Insert :: ops)
        end
      | `F ->
        if h.(i).(j - 1) + go = f.(i).(j) then
          back `H i (j - 1) (Alignment.Delete :: ops)
        else begin
          assert (j > 1 && f.(i).(j - 1) + ge = f.(i).(j));
          back `F i (j - 1) (Alignment.Delete :: ops)
        end
  in
  let ops = back `H m n [] in
  {
    Alignment.score = h.(m).(n);
    query_start = 0;
    query_stop = m;
    target_start = 0;
    target_stop = n;
    ops;
  }
