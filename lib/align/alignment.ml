type op = Replace | Insert | Delete

type t = {
  score : int;
  query_start : int;
  query_stop : int;
  target_start : int;
  target_stop : int;
  ops : op list;
}

let empty =
  {
    score = 0;
    query_start = 0;
    query_stop = 0;
    target_start = 0;
    target_stop = 0;
    ops = [];
  }

let query_span a = a.query_stop - a.query_start
let target_span a = a.target_stop - a.target_start

(* Walk the operations, threading (query position, target position,
   previous op) through [f]. *)
let fold_ops a ~init ~f =
  let acc, qpos, tpos, _ =
    List.fold_left
      (fun (acc, q, t, prev) op ->
        let acc = f acc ~q ~t ~prev op in
        match op with
        | Replace -> (acc, q + 1, t + 1, Some op)
        | Insert -> (acc, q + 1, t, Some op)
        | Delete -> (acc, q, t + 1, Some op))
      (init, a.query_start, a.target_start, None)
      a.ops
  in
  (acc, qpos, tpos)

let rescore ~matrix ~gap ~query ~target a =
  let score, qstop, tstop =
    fold_ops a ~init:0 ~f:(fun acc ~q ~t ~prev op ->
        match op with
        | Replace ->
          acc
          + Scoring.Submat.score matrix (Bioseq.Sequence.get query q)
              (Bioseq.Sequence.get target t)
        | Insert | Delete ->
          let opening = prev <> Some op in
          acc
          + (if opening then Scoring.Gap.open_score gap
             else Scoring.Gap.extend_score gap))
  in
  if qstop <> a.query_stop || tstop <> a.target_stop then
    invalid_arg
      (Printf.sprintf
         "Alignment.rescore: ops consume [%d,%d)x[%d,%d), record says \
          [%d,%d)x[%d,%d)"
         a.query_start qstop a.target_start tstop a.query_start a.query_stop
         a.target_start a.target_stop);
  score

let identity ~query ~target a =
  let total = List.length a.ops in
  if total = 0 then 0.
  else begin
    let matches, _, _ =
      fold_ops a ~init:0 ~f:(fun acc ~q ~t ~prev:_ op ->
          match op with
          | Replace ->
            if Bioseq.Sequence.get query q = Bioseq.Sequence.get target t then
              acc + 1
            else acc
          | Insert | Delete -> acc)
    in
    float_of_int matches /. float_of_int total
  end

let op_char = function Replace -> 'R' | Insert -> 'I' | Delete -> 'D'

let cigar a =
  let buf = Buffer.create 16 in
  let flush count op =
    if count > 0 then begin
      Buffer.add_string buf (string_of_int count);
      Buffer.add_char buf (op_char op)
    end
  in
  let count, last =
    List.fold_left
      (fun (count, last) op ->
        match last with
        | Some prev when prev = op -> (count + 1, last)
        | Some prev ->
          flush count prev;
          (1, Some op)
        | None -> (1, Some op))
      (0, None) a.ops
  in
  (match last with Some op -> flush count op | None -> ());
  Buffer.contents buf

let pp ~query ~target ppf a =
  let qrow = Buffer.create 64
  and mid = Buffer.create 64
  and trow = Buffer.create 64 in
  let (), _, _ =
    fold_ops a ~init:() ~f:(fun () ~q ~t ~prev:_ op ->
        match op with
        | Replace ->
          let qc = Bioseq.Sequence.char_at query q
          and tc = Bioseq.Sequence.char_at target t in
          Buffer.add_char qrow qc;
          Buffer.add_char mid (if qc = tc then '|' else '.');
          Buffer.add_char trow tc
        | Insert ->
          Buffer.add_char qrow (Bioseq.Sequence.char_at query q);
          Buffer.add_char mid ' ';
          Buffer.add_char trow '-'
        | Delete ->
          Buffer.add_char qrow '-';
          Buffer.add_char mid ' ';
          Buffer.add_char trow (Bioseq.Sequence.char_at target t))
  in
  Format.fprintf ppf "score %d  query [%d,%d)  target [%d,%d)@," a.score
    a.query_start a.query_stop a.target_start a.target_stop;
  Format.fprintf ppf "Q: %s@,   %s@,T: %s" (Buffer.contents qrow)
    (Buffer.contents mid) (Buffer.contents trow)
