(** Banded local alignment: Smith-Waterman restricted to a diagonal
    band, the O(band * n) workhorse of seeded aligners (BLAST's gapped
    extension stage uses it through {!Blast}).

    Cells outside the band behave as local restarts (value 0), so the
    result is always a valid local-alignment score and never exceeds the
    unrestricted Smith-Waterman optimum; with a band covering the whole
    matrix the two are equal (property-tested). *)

val score_only :
  matrix:Scoring.Submat.t ->
  gap:Scoring.Gap.t ->
  band:int ->
  diagonal:int ->
  query:Bioseq.Sequence.t ->
  target:Bioseq.Sequence.t ->
  int
(** Best local score over paths whose cells [(i, j)] (1-based query row,
    target column) satisfy [|j - i - diagonal| <= band]. [diagonal = 0]
    is the main diagonal; [band >= 0]. *)

val covering_band : query:Bioseq.Sequence.t -> target:Bioseq.Sequence.t -> int
(** A band half-width that makes {!score_only} equal the full
    Smith-Waterman for any [diagonal] in
    [ [-|query|, |target|] ): [m + n]. *)
