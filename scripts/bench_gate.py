#!/usr/bin/env python3
"""Regression gate over BENCH_oasis.json.

Compares a freshly generated BENCH_oasis.json (CI runs the quick kernel
and scaling benches) against the committed baseline and fails when the
kernel's engine columns/sec regressed by more than the tolerance
(default 25%, override with BENCH_GATE_TOLERANCE, e.g. 0.4).

The baseline is a full-size run from the development machine while the
fresh numbers come from a CI runner's quick mode, so the tolerance is
deliberately loose: the gate exists to catch the engine getting
dramatically slower (an accidental O(n) regression, a lost
optimization), not single-digit noise. Correctness flags
(hit_streams_identical / hit_streams_match) are hard failures at any
tolerance. The scaling speedup assertion itself lives in the bench
binary, where it can see the core count; this script only re-checks the
recorded numbers for consistency.

A truncated or half-written input (a bench run killed mid-section, a
partial artifact download) must never produce a Python traceback: every
section access goes through guarded lookups that emit a one-line
skip/error message instead.

Usage: bench_gate.py --baseline BENCH_baseline.json --fresh BENCH_oasis.json
"""

import argparse
import json
import os
import sys


def fail(msg: str) -> None:
    print(f"bench gate: FAIL: {msg}")
    sys.exit(1)


def load_json(path: str, label: str) -> dict:
    """Parse [path] or die with a one-line message (no traceback)."""
    try:
        with open(path) as f:
            data = json.load(f)
    except FileNotFoundError:
        fail(f"{label} file {path} does not exist")
    except json.JSONDecodeError as e:
        fail(
            f"{label} file {path} is not valid JSON (line {e.lineno}: "
            f"{e.msg}) — truncated write?"
        )
    except OSError as e:
        fail(f"cannot read {label} file {path}: {e.strerror}")
    if not isinstance(data, dict):
        fail(f"{label} file {path} is not a JSON object")
    return data


def lookup(section: dict, *keys):
    """Walk nested dict keys; None when any level is missing/mistyped."""
    cur = section
    for k in keys:
        if not isinstance(cur, dict) or k not in cur:
            return None
        cur = cur[k]
    return cur


def number(section: dict, *keys):
    """A numeric leaf under [keys], or None (bool is not a number)."""
    v = lookup(section, *keys)
    if isinstance(v, bool) or not isinstance(v, (int, float)):
        return None
    return v


def skip(section_name: str, dotted: str) -> None:
    print(
        f"bench gate: skip {section_name}: missing/non-numeric "
        f"{dotted} (truncated section?)"
    )


def batch_is_full(batch: dict) -> bool:
    """A full-size (non --quick) batch section: ratio assertions apply."""
    return batch.get("quick") is False


def gate_throughput(label, base_cps, fresh_cps, tolerance) -> None:
    """Shared floor check; both operands already validated numeric."""
    floor = base_cps * (1.0 - tolerance)
    verdict = "ok" if fresh_cps >= floor else "REGRESSION"
    print(
        f"bench gate: {label}: fresh {fresh_cps:,.0f} vs baseline "
        f"{base_cps:,.0f} (floor {floor:,.0f} at {tolerance:.0%} "
        f"tolerance) -> {verdict}"
    )
    if fresh_cps < floor:
        fail(
            f"{label} regressed more than {tolerance:.0%} "
            f"({fresh_cps:,.0f} < {floor:,.0f})"
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--fresh", required=True)
    args = parser.parse_args()

    try:
        tolerance = float(os.environ.get("BENCH_GATE_TOLERANCE", "0.25"))
    except ValueError:
        fail("BENCH_GATE_TOLERANCE is not a number")
    if not (0.0 <= tolerance < 1.0):
        fail(f"BENCH_GATE_TOLERANCE must be in [0, 1), got {tolerance}")

    baseline = load_json(args.baseline, "baseline")
    fresh = load_json(args.fresh, "fresh")

    # The committed file predating the sectioned format kept the kernel
    # numbers at the top level with a "bench" marker.
    base_kernel = baseline.get("kernel", baseline if "bench" in baseline else None)
    if not isinstance(base_kernel, dict):
        fail(f"{args.baseline} has no kernel section")
    fresh_kernel = fresh.get("kernel")
    if not isinstance(fresh_kernel, dict):
        fail(f"{args.fresh} has no kernel section — did the quick kernel bench run?")

    if fresh_kernel.get("hit_streams_identical") is not True:
        fail("fresh kernel run did not certify hit-stream identity")

    base_cps = number(base_kernel, "engine", "columns_per_sec")
    fresh_cps = number(fresh_kernel, "engine", "columns_per_sec")
    if fresh_cps is None:
        fail("fresh kernel section has no engine.columns_per_sec — truncated run?")
    if base_cps is None:
        skip("kernel", "baseline engine.columns_per_sec")
    else:
        gate_throughput("kernel engine columns/sec", base_cps, fresh_cps, tolerance)

    # Informational: the engine-vs-reference speedup is machine-relative
    # and should be far more stable than absolute throughput.
    base_speedup = number(base_kernel, "speedup_columns_per_sec")
    fresh_speedup = number(fresh_kernel, "speedup_columns_per_sec")
    if base_speedup and fresh_speedup:
        print(
            f"bench gate: engine/reference speedup: fresh {fresh_speedup:.2f}x "
            f"vs baseline {base_speedup:.2f}x (informational)"
        )

    # Disk path: same rules as the kernel — stream identity between the
    # Mem and Disk engines is a hard failure, warm-pool disk throughput
    # gates at the shared tolerance. Cold numbers are informational
    # (they track the runner's memcpy speed more than the search).
    base_disk = baseline.get("disk")
    fresh_disk = fresh.get("disk")
    if isinstance(fresh_disk, dict):
        if fresh_disk.get("hit_streams_identical") is not True:
            fail("fresh disk run did not certify Mem/Disk hit-stream identity")
        if isinstance(base_disk, dict):
            base_cps = number(base_disk, "position_indexed_warm", "columns_per_sec")
            fresh_cps = number(fresh_disk, "position_indexed_warm", "columns_per_sec")
            if base_cps is None or fresh_cps is None:
                skip("disk", "position_indexed_warm.columns_per_sec")
            else:
                gate_throughput(
                    "warm disk columns/sec (position-indexed)",
                    base_cps,
                    fresh_cps,
                    tolerance,
                )
                ratio = number(fresh_disk, "disk_vs_mem_warm")
                if ratio is not None:
                    print(
                        f"bench gate: warm disk / mem throughput ratio: "
                        f"{ratio:.2f}x (informational)"
                    )

    # Observability: the hooks-off run IS the shipped hot path (every
    # hook site is a single pointer compare on a None option), so it
    # gates against the same kernel baseline at the same tolerance —
    # this is the "disabled instrumentation is free" promise. The
    # hooks-on overhead and phase split are informational: they depend
    # on clock resolution and workload shape, not on correctness.
    fresh_obs = fresh.get("obs")
    if isinstance(fresh_obs, dict):
        base_cps = number(base_kernel, "engine", "columns_per_sec")
        off_cps = number(fresh_obs, "hooks_off", "columns_per_sec")
        if base_cps is None or off_cps is None:
            skip("obs", "hooks_off.columns_per_sec")
        else:
            gate_throughput(
                "hooks-off columns/sec (vs baseline kernel)",
                base_cps,
                off_cps,
                tolerance,
            )
        overhead = number(fresh_obs, "overhead_pct")
        if overhead is not None:
            print(
                f"bench gate: hooks-on instrumentation overhead: "
                f"{overhead:.1f}% (informational)"
            )
        phases = fresh_obs.get("phases")
        if isinstance(phases, dict):
            fractions = {
                name: number(v, "fraction")
                for name, v in phases.items()
                if isinstance(v, dict)
            }
            fractions = {k: v for k, v in fractions.items() if v is not None}
            if fractions:
                split = ", ".join(
                    f"{name} {frac:.0%}"
                    for name, frac in sorted(
                        fractions.items(), key=lambda kv: -kv[1]
                    )
                )
                print(f"bench gate: phase split: {split}")

    fresh_scaling = fresh.get("scaling")
    if isinstance(fresh_scaling, dict):
        if fresh_scaling.get("hit_streams_match") is not True:
            fail("fresh scaling run did not certify hit-stream equality")
        cores = number(fresh_scaling, "cores") or 1
        s2 = number(fresh_scaling, "shards_2", "speedup")
        if cores >= 2 and s2 is not None and not s2 > 1.0:
            fail(
                f"scaling: 2-shard speedup {s2:.2f}x is not > 1.0 on a "
                f"{cores:.0f}-core runner"
            )
        shard_speedups = {
            k[len("shards_") :]: number(v, "speedup")
            for k, v in sorted(fresh_scaling.items())
            if k.startswith("shards_") and isinstance(v, dict)
        }
        summary = ", ".join(
            f"{n} shards: {s:.2f}x"
            for n, s in shard_speedups.items()
            if s is not None
        )
        if summary:
            print(f"bench gate: scaling on {cores:.0f} core(s): {summary}")
        else:
            skip("scaling", "shards_*.speedup")

    # Incremental (log-structured) index: the merged {segments ∪ tail}
    # search must agree with the monolithic engine — a hard failure at
    # any tolerance. Throughput numbers are informational: the append
    # path is dominated by tail-tree maintenance, which the kernel gate
    # already covers.
    fresh_inc = fresh.get("incremental")
    if isinstance(fresh_inc, dict):
        if fresh_inc.get("hit_streams_match") is not True:
            fail(
                "fresh incremental run did not certify merged-vs-monolithic "
                "hit-stream equality"
            )
        print(
            f"bench gate: incremental: append "
            f"{number(fresh_inc, 'append', 'symbols_per_sec') or 0:,.0f} "
            f"symbols/sec "
            f"({lookup(fresh_inc, 'append', 'segments') or '?'} segments + "
            f"{lookup(fresh_inc, 'append', 'tail_sequences') or '?'} tail), "
            f"reopen {number(fresh_inc, 'reopen', 'wall_s') or 0:.3f}s "
            f"({lookup(fresh_inc, 'reopen', 'records_replayed') or '?'} "
            f"records replayed), merged/mono search "
            f"{number(fresh_inc, 'search', 'merged_vs_mono') or 0:.2f}x "
            f"(informational)"
        )

    # Fused batch kernel: per-query bit-identity against single-engine
    # streams is a hard failure at any tolerance, and the fused
    # throughput (virtual columns served per second of fused wall time)
    # gates like the kernel. The >=1.5x aggregate-speedup acceptance
    # bar is asserted on full-size runs — the committed baseline always,
    # the fresh file when it is also a full run; a quick fresh run (one
    # rep on a small database, as in CI) reports its ratio
    # informationally since the baseline wall times there are too short
    # to ratio reliably.
    base_batch = baseline.get("batch")
    if not isinstance(base_batch, dict):
        base_batch = None
    fresh_batch = fresh.get("batch")
    if isinstance(fresh_batch, dict):
        if fresh_batch.get("hit_streams_identical") is not True:
            fail(
                "fresh batch run did not certify fused-vs-single hit-stream "
                "identity"
            )
        for section, label in (
            ("mem_fused", "fused mem"),
            ("disk_warm_fused", "fused warm disk"),
        ):
            if base_batch is None or section not in base_batch:
                continue
            base_cps = number(base_batch, section, "virtual_columns_per_sec")
            fresh_cps = number(fresh_batch, section, "virtual_columns_per_sec")
            if base_cps is None or fresh_cps is None:
                skip("batch", f"{section}.virtual_columns_per_sec")
                continue
            gate_throughput(
                f"{label} virtual columns/sec", base_cps, fresh_cps, tolerance
            )
        for name, batch, full in (
            ("baseline", base_batch, base_batch is not None
             and batch_is_full(base_batch)),
            ("fresh", fresh_batch, batch_is_full(fresh_batch)),
        ):
            if batch is None:
                continue
            speedup = number(batch, "disk_warm_fused_speedup")
            if speedup is None:
                continue
            if full:
                verdict = "ok" if speedup >= 1.5 else "BELOW TARGET"
                print(
                    f"bench gate: {name} warm-disk fused speedup: "
                    f"{speedup:.2f}x (target >= 1.5x) -> {verdict}"
                )
                if speedup < 1.5:
                    fail(
                        f"{name} warm-disk fused batch speedup {speedup:.2f}x "
                        f"is below the 1.5x acceptance target"
                    )
            else:
                print(
                    f"bench gate: {name} warm-disk fused speedup: "
                    f"{speedup:.2f}x (quick run, informational)"
                )
        mem_speedup = number(fresh_batch, "mem_fused_speedup")
        if mem_speedup is not None:
            print(
                f"bench gate: fresh mem fused speedup: {mem_speedup:.2f}x, "
                f"physical sweep reduction "
                f"{number(fresh_batch, 'physical_sweep_reduction') or 0:.2f}x "
                f"(informational)"
            )

    # Serving layer: the daemon must stream bit-identical hits to the
    # direct engine (hard failure); latency/throughput numbers are
    # informational — they measure socket + framing overhead on top of
    # the engine, which the kernel gate already covers.
    fresh_serve = fresh.get("serve")
    if isinstance(fresh_serve, dict):
        if fresh_serve.get("hit_streams_identical") is not True:
            fail(
                "fresh serve run did not certify daemon-vs-engine hit-stream "
                "identity"
            )
        p50 = number(fresh_serve, "sequential", "latency_us_p50")
        p99 = number(fresh_serve, "sequential", "latency_us_p99")
        rps = number(fresh_serve, "concurrent", "requests_per_sec")
        if p50 is None or p99 is None:
            skip("serve", "sequential.latency_us_p50/p99")
        else:
            print(
                f"bench gate: serve: request latency p50 {p50:,.0f} us / "
                f"p99 {p99:,.0f} us, concurrent "
                f"{rps or 0:,.1f} req/s (informational)"
            )

    print("bench gate: PASS")


if __name__ == "__main__":
    main()
