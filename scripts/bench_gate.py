#!/usr/bin/env python3
"""Regression gate over BENCH_oasis.json.

Compares a freshly generated BENCH_oasis.json (CI runs the quick kernel
and scaling benches) against the committed baseline and fails when the
kernel's engine columns/sec regressed by more than the tolerance
(default 25%, override with BENCH_GATE_TOLERANCE, e.g. 0.4).

Two acceptance bars are absolute, not tolerance-relative, and apply to
full-size (non --quick) sections only: kernel engine columns/sec must
be >= 1.5x the committed pre-round-2 kernel baseline (the arc-blocked
expansion rebuild's target), and the fused batch kernel's physical
sweep reduction must be >= 3x (the sharing it exists to deliver; its
speedup over independent engines is informational because that ratio's
denominator — the single-query kernel — keeps getting faster). Quick
CI runs report both informationally — their wall times are too short
to hold a ratio on a shared runner.

A fresh file carrying a "kernel_flambda_O3" section (the flambda -O3 CI
leg runs the quick kernel bench with --suffix=_flambda_O3) is gated
against the baseline's section of the same name when that baseline
section carries numbers; until one is committed from a flambda switch,
the flambda numbers are informational.

The baseline is a full-size run from the development machine while the
fresh numbers come from a CI runner's quick mode, so the tolerance is
deliberately loose: the gate exists to catch the engine getting
dramatically slower (an accidental O(n) regression, a lost
optimization), not single-digit noise. Correctness flags
(hit_streams_identical / hit_streams_match) are hard failures at any
tolerance. The scaling speedup assertion itself lives in the bench
binary, where it can see the core count; this script only re-checks the
recorded numbers for consistency.

A truncated or half-written input (a bench run killed mid-section, a
partial artifact download) must never produce a Python traceback: every
section access goes through guarded lookups that emit a one-line
skip/error message instead.

Usage: bench_gate.py --baseline BENCH_baseline.json --fresh BENCH_oasis.json
"""

import argparse
import json
import os
import sys


def fail(msg: str) -> None:
    print(f"bench gate: FAIL: {msg}")
    sys.exit(1)


def load_json(path: str, label: str) -> dict:
    """Parse [path] or die with a one-line message (no traceback)."""
    try:
        with open(path) as f:
            data = json.load(f)
    except FileNotFoundError:
        fail(f"{label} file {path} does not exist")
    except json.JSONDecodeError as e:
        fail(
            f"{label} file {path} is not valid JSON (line {e.lineno}: "
            f"{e.msg}) — truncated write?"
        )
    except OSError as e:
        fail(f"cannot read {label} file {path}: {e.strerror}")
    if not isinstance(data, dict):
        fail(f"{label} file {path} is not a JSON object")
    return data


def lookup(section: dict, *keys):
    """Walk nested dict keys; None when any level is missing/mistyped."""
    cur = section
    for k in keys:
        if not isinstance(cur, dict) or k not in cur:
            return None
        cur = cur[k]
    return cur


def number(section: dict, *keys):
    """A numeric leaf under [keys], or None (bool is not a number)."""
    v = lookup(section, *keys)
    if isinstance(v, bool) or not isinstance(v, (int, float)):
        return None
    return v


def skip(section_name: str, dotted: str) -> None:
    print(
        f"bench gate: skip {section_name}: missing/non-numeric "
        f"{dotted} (truncated section?)"
    )


def batch_is_full(batch: dict) -> bool:
    """A full-size (non --quick) batch section: ratio assertions apply."""
    return batch.get("quick") is False


def gate_throughput(label, base_cps, fresh_cps, tolerance) -> None:
    """Shared floor check; both operands already validated numeric."""
    floor = base_cps * (1.0 - tolerance)
    verdict = "ok" if fresh_cps >= floor else "REGRESSION"
    print(
        f"bench gate: {label}: fresh {fresh_cps:,.0f} vs baseline "
        f"{base_cps:,.0f} (floor {floor:,.0f} at {tolerance:.0%} "
        f"tolerance) -> {verdict}"
    )
    if fresh_cps < floor:
        fail(
            f"{label} regressed more than {tolerance:.0%} "
            f"({fresh_cps:,.0f} < {floor:,.0f})"
        )


# Committed full-size engine columns/sec immediately before the kernel
# round 2 rebuild (arc-blocked expansion, packed tree source, shared
# pre-DP bounds). Round 2's acceptance bar: a full-size run must clear
# 1.5x this figure.
PRE_ROUND2_CPS = 1_640_629.2


def kernel_is_full(kernel: dict) -> bool:
    """A full-size (non --quick) kernel section: the 1.5x bar applies."""
    return kernel.get("quick") is False


def gate_round2_bar(name: str, kernel: dict) -> None:
    """The absolute round-2 acceptance bar on one full-size section."""
    cps = number(kernel, "engine", "columns_per_sec")
    if cps is None:
        skip("kernel", f"{name} engine.columns_per_sec")
        return
    target = 1.5 * PRE_ROUND2_CPS
    if kernel_is_full(kernel):
        verdict = "ok" if cps >= target else "BELOW TARGET"
        print(
            f"bench gate: {name} kernel round-2 bar: {cps:,.0f} cols/s vs "
            f"target {target:,.0f} (1.5x pre-round-2 {PRE_ROUND2_CPS:,.0f}) "
            f"-> {verdict}"
        )
        if cps < target:
            fail(
                f"{name} full-size kernel columns/sec {cps:,.0f} is below "
                f"the 1.5x round-2 acceptance target {target:,.0f}"
            )
    else:
        print(
            f"bench gate: {name} kernel round-2 bar: {cps:,.0f} cols/s "
            f"(quick run, informational; full-size target {target:,.0f})"
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--fresh", required=True)
    args = parser.parse_args()

    try:
        tolerance = float(os.environ.get("BENCH_GATE_TOLERANCE", "0.25"))
    except ValueError:
        fail("BENCH_GATE_TOLERANCE is not a number")
    if not (0.0 <= tolerance < 1.0):
        fail(f"BENCH_GATE_TOLERANCE must be in [0, 1), got {tolerance}")

    baseline = load_json(args.baseline, "baseline")
    fresh = load_json(args.fresh, "fresh")

    # The committed file predating the sectioned format kept the kernel
    # numbers at the top level with a "bench" marker.
    base_kernel = baseline.get("kernel", baseline if "bench" in baseline else None)
    if not isinstance(base_kernel, dict):
        fail(f"{args.baseline} has no kernel section")
    fresh_kernel = fresh.get("kernel")
    flambda_only = not isinstance(fresh_kernel, dict) and isinstance(
        fresh.get("kernel_flambda_O3"), dict
    )
    if not isinstance(fresh_kernel, dict) and not flambda_only:
        fail(f"{args.fresh} has no kernel section — did the quick kernel bench run?")

    if not flambda_only:
        if fresh_kernel.get("hit_streams_identical") is not True:
            fail("fresh kernel run did not certify hit-stream identity")

    if not flambda_only:
        base_cps = number(base_kernel, "engine", "columns_per_sec")
        fresh_cps = number(fresh_kernel, "engine", "columns_per_sec")
        if fresh_cps is None:
            fail(
                "fresh kernel section has no engine.columns_per_sec — "
                "truncated run?"
            )
        if base_cps is None:
            skip("kernel", "baseline engine.columns_per_sec")
        else:
            gate_throughput(
                "kernel engine columns/sec", base_cps, fresh_cps, tolerance
            )

        # The round-2 acceptance bar: always asserted on the committed
        # full-size baseline, and on the fresh numbers when they are
        # also a full run.
        gate_round2_bar("baseline", base_kernel)
        gate_round2_bar("fresh", fresh_kernel)

        # Informational: the engine-vs-reference speedup is
        # machine-relative and should be far more stable than absolute
        # throughput.
        base_speedup = number(base_kernel, "speedup_columns_per_sec")
        fresh_speedup = number(fresh_kernel, "speedup_columns_per_sec")
        if base_speedup and fresh_speedup:
            print(
                f"bench gate: engine/reference speedup: fresh "
                f"{fresh_speedup:.2f}x vs baseline {base_speedup:.2f}x "
                f"(informational)"
            )
        reused = number(fresh_kernel, "bound_reused")
        recomputed = number(fresh_kernel, "bound_recomputed")
        if reused is not None and recomputed is not None:
            total = reused + recomputed
            print(
                f"bench gate: pre-DP sibling bound: {reused:,.0f} of "
                f"{total:,.0f} arcs settled without a DP walk "
                f"({reused / max(1, total):.1%}, informational)"
            )

    # Flambda -O3 leg: its numbers live in their own section (written
    # with --suffix=_flambda_O3) so they never mix with the default
    # toolchain's. Identity is a hard failure; throughput gates only
    # against a committed flambda baseline section, which does not
    # exist until one is recorded from a flambda switch.
    fresh_flambda = fresh.get("kernel_flambda_O3")
    if isinstance(fresh_flambda, dict):
        if fresh_flambda.get("hit_streams_identical") is not True:
            fail("fresh flambda kernel run did not certify hit-stream identity")
        flam_fresh_cps = number(fresh_flambda, "engine", "columns_per_sec")
        flam_base_cps = number(
            baseline.get("kernel_flambda_O3") or {}, "engine", "columns_per_sec"
        )
        if flam_fresh_cps is None:
            skip("kernel_flambda_O3", "engine.columns_per_sec")
        elif flam_base_cps is None:
            print(
                f"bench gate: flambda -O3 kernel: {flam_fresh_cps:,.0f} "
                f"cols/s (no committed flambda baseline yet, informational)"
            )
        else:
            gate_throughput(
                "flambda -O3 kernel engine columns/sec",
                flam_base_cps,
                flam_fresh_cps,
                tolerance,
            )

    # Disk path: same rules as the kernel — stream identity between the
    # Mem and Disk engines is a hard failure, warm-pool disk throughput
    # gates at the shared tolerance. Cold numbers are informational
    # (they track the runner's memcpy speed more than the search).
    base_disk = baseline.get("disk")
    fresh_disk = fresh.get("disk")
    if isinstance(fresh_disk, dict):
        if fresh_disk.get("hit_streams_identical") is not True:
            fail("fresh disk run did not certify Mem/Disk hit-stream identity")
        if isinstance(base_disk, dict):
            base_cps = number(base_disk, "position_indexed_warm", "columns_per_sec")
            fresh_cps = number(fresh_disk, "position_indexed_warm", "columns_per_sec")
            if base_cps is None or fresh_cps is None:
                skip("disk", "position_indexed_warm.columns_per_sec")
            else:
                gate_throughput(
                    "warm disk columns/sec (position-indexed)",
                    base_cps,
                    fresh_cps,
                    tolerance,
                )
                ratio = number(fresh_disk, "disk_vs_mem_warm")
                if ratio is not None:
                    print(
                        f"bench gate: warm disk / mem throughput ratio: "
                        f"{ratio:.2f}x (informational)"
                    )

    # Observability: the hooks-off run IS the shipped hot path (every
    # hook site is a single pointer compare on a None option), so it
    # gates against the same kernel baseline at the same tolerance —
    # this is the "disabled instrumentation is free" promise. The
    # hooks-on overhead and phase split are informational: they depend
    # on clock resolution and workload shape, not on correctness.
    fresh_obs = fresh.get("obs")
    if isinstance(fresh_obs, dict):
        base_cps = number(base_kernel, "engine", "columns_per_sec")
        off_cps = number(fresh_obs, "hooks_off", "columns_per_sec")
        if base_cps is None or off_cps is None:
            skip("obs", "hooks_off.columns_per_sec")
        else:
            gate_throughput(
                "hooks-off columns/sec (vs baseline kernel)",
                base_cps,
                off_cps,
                tolerance,
            )
        overhead = number(fresh_obs, "overhead_pct")
        if overhead is not None:
            print(
                f"bench gate: hooks-on instrumentation overhead: "
                f"{overhead:.1f}% (informational)"
            )
        phases = fresh_obs.get("phases")
        if isinstance(phases, dict):
            fractions = {
                name: number(v, "fraction")
                for name, v in phases.items()
                if isinstance(v, dict)
            }
            fractions = {k: v for k, v in fractions.items() if v is not None}
            if fractions:
                split = ", ".join(
                    f"{name} {frac:.0%}"
                    for name, frac in sorted(
                        fractions.items(), key=lambda kv: -kv[1]
                    )
                )
                print(f"bench gate: phase split: {split}")

    # Q-gram filter tier + BLAST cutoff seeding: top-K stream identity
    # against the plain engine is a hard failure at any tolerance — the
    # tier's whole contract is invisibility. The headline metric,
    # columns_saved_pct, is a ratio (scale-free), so it gates against
    # the committed baseline at the shared tolerance and carries an
    # absolute >= 20% acceptance bar on full-size runs.
    base_filter = baseline.get("filter")
    if not isinstance(base_filter, dict):
        base_filter = None
    fresh_filter = fresh.get("filter")
    if isinstance(fresh_filter, dict):
        if fresh_filter.get("hit_streams_identical") is not True:
            fail(
                "fresh filter run did not certify top-K hit-stream identity "
                "under seeding + q-gram settling"
            )
        saved = number(fresh_filter, "columns_saved_pct")
        if saved is None:
            skip("filter", "columns_saved_pct")
        else:
            full = fresh_filter.get("quick") is False
            if full:
                verdict = "ok" if saved >= 20.0 else "BELOW TARGET"
                print(
                    f"bench gate: filter tier columns saved: {saved:.1f}% "
                    f"(target >= 20%) -> {verdict}"
                )
                if saved < 20.0:
                    fail(
                        f"filter tier saved only {saved:.1f}% of DP columns, "
                        f"below the 20% acceptance target"
                    )
            else:
                print(
                    f"bench gate: filter tier columns saved: {saved:.1f}% "
                    f"(quick run, informational; full-size target >= 20%)"
                )
            base_saved = number(base_filter or {}, "columns_saved_pct")
            if base_saved is not None:
                floor = base_saved * (1.0 - tolerance)
                if saved < floor:
                    fail(
                        f"filter tier columns saved {saved:.1f}% regressed "
                        f"more than {tolerance:.0%} vs baseline "
                        f"{base_saved:.1f}% (floor {floor:.1f}%)"
                    )
                print(
                    f"bench gate: filter tier vs baseline: {saved:.1f}% vs "
                    f"{base_saved:.1f}% (floor {floor:.1f}%) -> ok"
                )
        settles = [
            number(fresh_filter, "filter_settled_coarse") or 0,
            number(fresh_filter, "filter_settled_refined") or 0,
        ]
        tested = number(fresh_filter, "filter_tested")
        raised = number(fresh_filter, "seeds_raised")
        if tested is not None:
            print(
                f"bench gate: filter tier: {tested:,.0f} subtrees tested, "
                f"{settles[0]:,.0f} coarse + {settles[1]:,.0f} refined "
                f"settles, seeds raised on {raised or 0:,.0f} queries "
                f"(informational)"
            )

    fresh_scaling = fresh.get("scaling")
    if isinstance(fresh_scaling, dict):
        if fresh_scaling.get("hit_streams_match") is not True:
            fail("fresh scaling run did not certify hit-stream equality")
        cores = number(fresh_scaling, "cores") or 1
        s2 = number(fresh_scaling, "shards_2", "speedup")
        if cores >= 2 and s2 is not None and not s2 > 1.0:
            fail(
                f"scaling: 2-shard speedup {s2:.2f}x is not > 1.0 on a "
                f"{cores:.0f}-core runner"
            )
        shard_speedups = {
            k[len("shards_") :]: number(v, "speedup")
            for k, v in sorted(fresh_scaling.items())
            if k.startswith("shards_") and isinstance(v, dict)
        }
        summary = ", ".join(
            f"{n} shards: {s:.2f}x"
            for n, s in shard_speedups.items()
            if s is not None
        )
        if summary:
            print(f"bench gate: scaling on {cores:.0f} core(s): {summary}")
        else:
            skip("scaling", "shards_*.speedup")

    # Incremental (log-structured) index: the merged {segments ∪ tail}
    # search must agree with the monolithic engine — a hard failure at
    # any tolerance. Throughput numbers are informational: the append
    # path is dominated by tail-tree maintenance, which the kernel gate
    # already covers.
    fresh_inc = fresh.get("incremental")
    if isinstance(fresh_inc, dict):
        if fresh_inc.get("hit_streams_match") is not True:
            fail(
                "fresh incremental run did not certify merged-vs-monolithic "
                "hit-stream equality"
            )
        print(
            f"bench gate: incremental: append "
            f"{number(fresh_inc, 'append', 'symbols_per_sec') or 0:,.0f} "
            f"symbols/sec "
            f"({lookup(fresh_inc, 'append', 'segments') or '?'} segments + "
            f"{lookup(fresh_inc, 'append', 'tail_sequences') or '?'} tail), "
            f"reopen {number(fresh_inc, 'reopen', 'wall_s') or 0:.3f}s "
            f"({lookup(fresh_inc, 'reopen', 'records_replayed') or '?'} "
            f"records replayed), merged/mono search "
            f"{number(fresh_inc, 'search', 'merged_vs_mono') or 0:.2f}x "
            f"(informational)"
        )

    # Fused batch kernel: per-query bit-identity against single-engine
    # streams is a hard failure at any tolerance, and the fused
    # throughput (virtual columns served per second of fused wall time)
    # gates like the kernel. The >=1.5x aggregate-speedup acceptance
    # bar is asserted on full-size runs — the committed baseline always,
    # the fresh file when it is also a full run; a quick fresh run (one
    # rep on a small database, as in CI) reports its ratio
    # informationally since the baseline wall times there are too short
    # to ratio reliably.
    base_batch = baseline.get("batch")
    if not isinstance(base_batch, dict):
        base_batch = None
    fresh_batch = fresh.get("batch")
    if isinstance(fresh_batch, dict):
        if fresh_batch.get("hit_streams_identical") is not True:
            fail(
                "fresh batch run did not certify fused-vs-single hit-stream "
                "identity"
            )
        for section, label in (
            ("mem_fused", "fused mem"),
            ("disk_warm_fused", "fused warm disk"),
        ):
            if base_batch is None or section not in base_batch:
                continue
            base_cps = number(base_batch, section, "virtual_columns_per_sec")
            fresh_cps = number(fresh_batch, section, "virtual_columns_per_sec")
            if base_cps is None or fresh_cps is None:
                skip("batch", f"{section}.virtual_columns_per_sec")
                continue
            gate_throughput(
                f"{label} virtual columns/sec", base_cps, fresh_cps, tolerance
            )
        # The fused kernel's absolute acceptance bar is the physical
        # sweep reduction — the sharing it exists to deliver. Its
        # speedup over k independent engines is reported but not gated:
        # that ratio's denominator is the single-query kernel, which
        # round 2 made ~2x faster, so a fixed relative bar would punish
        # the batch kernel for the plain engine improving. Absolute
        # fused throughput is covered by the tolerance gates above.
        for name, batch, full in (
            ("baseline", base_batch, base_batch is not None
             and batch_is_full(base_batch)),
            ("fresh", fresh_batch, batch_is_full(fresh_batch)),
        ):
            if batch is None:
                continue
            sweeps = number(batch, "physical_sweep_reduction")
            speedup = number(batch, "disk_warm_fused_speedup")
            if speedup is not None:
                print(
                    f"bench gate: {name} warm-disk fused speedup: "
                    f"{speedup:.2f}x (informational)"
                )
            if sweeps is None:
                continue
            if full:
                verdict = "ok" if sweeps >= 3.0 else "BELOW TARGET"
                print(
                    f"bench gate: {name} fused physical sweep reduction: "
                    f"{sweeps:.2f}x (target >= 3x) -> {verdict}"
                )
                if sweeps < 3.0:
                    fail(
                        f"{name} fused batch physical sweep reduction "
                        f"{sweeps:.2f}x is below the 3x acceptance target"
                    )
            else:
                print(
                    f"bench gate: {name} fused physical sweep reduction: "
                    f"{sweeps:.2f}x (quick run, informational)"
                )
        mem_speedup = number(fresh_batch, "mem_fused_speedup")
        if mem_speedup is not None:
            print(
                f"bench gate: fresh mem fused speedup: {mem_speedup:.2f}x, "
                f"physical sweep reduction "
                f"{number(fresh_batch, 'physical_sweep_reduction') or 0:.2f}x "
                f"(informational)"
            )

    # Serving layer: the daemon must stream bit-identical hits to the
    # direct engine (hard failure); latency/throughput numbers are
    # informational — they measure socket + framing overhead on top of
    # the engine, which the kernel gate already covers.
    fresh_serve = fresh.get("serve")
    if isinstance(fresh_serve, dict):
        if fresh_serve.get("hit_streams_identical") is not True:
            fail(
                "fresh serve run did not certify daemon-vs-engine hit-stream "
                "identity"
            )
        p50 = number(fresh_serve, "sequential", "latency_us_p50")
        p99 = number(fresh_serve, "sequential", "latency_us_p99")
        rps = number(fresh_serve, "concurrent", "requests_per_sec")
        if p50 is None or p99 is None:
            skip("serve", "sequential.latency_us_p50/p99")
        else:
            print(
                f"bench gate: serve: request latency p50 {p50:,.0f} us / "
                f"p99 {p99:,.0f} us, concurrent "
                f"{rps or 0:,.1f} req/s (informational)"
            )

    # Edit-distance kernel: the bit-parallel Myers kernel must report
    # streams identical to its scalar DP oracle (hard failure), and its
    # rows/sec gates against the committed baseline at the shared
    # tolerance. The bit-parallel/DP speedup is informational — it
    # tracks query length and word width, not regressions.
    base_edit = baseline.get("edit")
    fresh_edit = fresh.get("edit")
    if isinstance(fresh_edit, dict):
        if fresh_edit.get("hit_streams_identical") is not True:
            fail(
                "fresh edit run did not certify bit-parallel-vs-DP "
                "hit-stream identity"
            )
        base_rps = number(base_edit or {}, "bitparallel", "rows_per_sec")
        fresh_rps = number(fresh_edit, "bitparallel", "rows_per_sec")
        if fresh_rps is None:
            skip("edit", "bitparallel.rows_per_sec")
        elif base_rps is None:
            skip("edit", "baseline bitparallel.rows_per_sec")
        else:
            gate_throughput(
                "edit bit-parallel rows/sec", base_rps, fresh_rps, tolerance
            )
        speedup = number(fresh_edit, "speedup_rows_per_sec")
        if speedup is not None:
            print(
                f"bench gate: edit bit-parallel vs DP oracle: "
                f"{speedup:.2f}x rows/sec (informational)"
            )

    print("bench gate: PASS")


if __name__ == "__main__":
    main()
