#!/usr/bin/env python3
"""Regression gate over BENCH_oasis.json.

Compares a freshly generated BENCH_oasis.json (CI runs the quick kernel
and scaling benches) against the committed baseline and fails when the
kernel's engine columns/sec regressed by more than the tolerance
(default 25%, override with BENCH_GATE_TOLERANCE, e.g. 0.4).

The baseline is a full-size run from the development machine while the
fresh numbers come from a CI runner's quick mode, so the tolerance is
deliberately loose: the gate exists to catch the engine getting
dramatically slower (an accidental O(n) regression, a lost
optimization), not single-digit noise. Correctness flags
(hit_streams_identical / hit_streams_match) are hard failures at any
tolerance. The scaling speedup assertion itself lives in the bench
binary, where it can see the core count; this script only re-checks the
recorded numbers for consistency.

Usage: bench_gate.py --baseline BENCH_baseline.json --fresh BENCH_oasis.json
"""

import argparse
import json
import os
import sys


def fail(msg: str) -> None:
    print(f"bench gate: FAIL: {msg}")
    sys.exit(1)


def batch_is_full(batch: dict) -> bool:
    """A full-size (non --quick) batch section: ratio assertions apply."""
    return batch.get("quick") is False


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--fresh", required=True)
    args = parser.parse_args()

    tolerance = float(os.environ.get("BENCH_GATE_TOLERANCE", "0.25"))
    if not (0.0 <= tolerance < 1.0):
        fail(f"BENCH_GATE_TOLERANCE must be in [0, 1), got {tolerance}")

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.fresh) as f:
        fresh = json.load(f)

    # The committed file predating the sectioned format kept the kernel
    # numbers at the top level with a "bench" marker.
    base_kernel = baseline.get("kernel", baseline if "bench" in baseline else None)
    if base_kernel is None:
        fail(f"{args.baseline} has no kernel section")
    fresh_kernel = fresh.get("kernel")
    if fresh_kernel is None:
        fail(f"{args.fresh} has no kernel section — did the quick kernel bench run?")

    if fresh_kernel.get("hit_streams_identical") is not True:
        fail("fresh kernel run did not certify hit-stream identity")

    base_cps = base_kernel["engine"]["columns_per_sec"]
    fresh_cps = fresh_kernel["engine"]["columns_per_sec"]
    floor = base_cps * (1.0 - tolerance)
    verdict = "ok" if fresh_cps >= floor else "REGRESSION"
    print(
        f"bench gate: kernel engine columns/sec: fresh {fresh_cps:,.0f} vs "
        f"baseline {base_cps:,.0f} (floor {floor:,.0f} at {tolerance:.0%} "
        f"tolerance) -> {verdict}"
    )
    if fresh_cps < floor:
        fail(
            f"kernel columns/sec regressed more than {tolerance:.0%} "
            f"({fresh_cps:,.0f} < {floor:,.0f})"
        )

    # Informational: the engine-vs-reference speedup is machine-relative
    # and should be far more stable than absolute throughput.
    base_speedup = base_kernel.get("speedup_columns_per_sec")
    fresh_speedup = fresh_kernel.get("speedup_columns_per_sec")
    if base_speedup and fresh_speedup:
        print(
            f"bench gate: engine/reference speedup: fresh {fresh_speedup:.2f}x "
            f"vs baseline {base_speedup:.2f}x (informational)"
        )

    # Disk path: same rules as the kernel — stream identity between the
    # Mem and Disk engines is a hard failure, warm-pool disk throughput
    # gates at the shared tolerance. Cold numbers are informational
    # (they track the runner's memcpy speed more than the search).
    base_disk = baseline.get("disk")
    fresh_disk = fresh.get("disk")
    if fresh_disk is not None:
        if fresh_disk.get("hit_streams_identical") is not True:
            fail("fresh disk run did not certify Mem/Disk hit-stream identity")
        if base_disk is not None:
            base_cps = base_disk["position_indexed_warm"]["columns_per_sec"]
            fresh_cps = fresh_disk["position_indexed_warm"]["columns_per_sec"]
            floor = base_cps * (1.0 - tolerance)
            verdict = "ok" if fresh_cps >= floor else "REGRESSION"
            print(
                f"bench gate: warm disk columns/sec (position-indexed): fresh "
                f"{fresh_cps:,.0f} vs baseline {base_cps:,.0f} (floor "
                f"{floor:,.0f} at {tolerance:.0%} tolerance) -> {verdict}"
            )
            if fresh_cps < floor:
                fail(
                    f"warm disk columns/sec regressed more than {tolerance:.0%} "
                    f"({fresh_cps:,.0f} < {floor:,.0f})"
                )
            ratio = fresh_disk.get("disk_vs_mem_warm")
            if ratio is not None:
                print(
                    f"bench gate: warm disk / mem throughput ratio: "
                    f"{ratio:.2f}x (informational)"
                )

    # Observability: the hooks-off run IS the shipped hot path (every
    # hook site is a single pointer compare on a None option), so it
    # gates against the same kernel baseline at the same tolerance —
    # this is the "disabled instrumentation is free" promise. The
    # hooks-on overhead and phase split are informational: they depend
    # on clock resolution and workload shape, not on correctness.
    fresh_obs = fresh.get("obs")
    if fresh_obs is not None:
        base_cps = base_kernel["engine"]["columns_per_sec"]
        off_cps = fresh_obs["hooks_off"]["columns_per_sec"]
        floor = base_cps * (1.0 - tolerance)
        verdict = "ok" if off_cps >= floor else "REGRESSION"
        print(
            f"bench gate: hooks-off columns/sec: fresh {off_cps:,.0f} vs "
            f"baseline kernel {base_cps:,.0f} (floor {floor:,.0f} at "
            f"{tolerance:.0%} tolerance) -> {verdict}"
        )
        if off_cps < floor:
            fail(
                f"disabled-instrumentation columns/sec regressed more than "
                f"{tolerance:.0%} ({off_cps:,.0f} < {floor:,.0f})"
            )
        overhead = fresh_obs.get("overhead_pct")
        if overhead is not None:
            print(
                f"bench gate: hooks-on instrumentation overhead: "
                f"{overhead:.1f}% (informational)"
            )
        phases = fresh_obs.get("phases", {})
        if phases:
            split = ", ".join(
                f"{name} {v['fraction']:.0%}"
                for name, v in sorted(
                    phases.items(), key=lambda kv: -kv[1]["fraction"]
                )
            )
            print(f"bench gate: phase split: {split}")

    fresh_scaling = fresh.get("scaling")
    if fresh_scaling is not None:
        if fresh_scaling.get("hit_streams_match") is not True:
            fail("fresh scaling run did not certify hit-stream equality")
        cores = fresh_scaling.get("cores", 1)
        s2 = fresh_scaling.get("shards_2", {}).get("speedup")
        if cores >= 2 and s2 is not None and not s2 > 1.0:
            fail(
                f"scaling: 2-shard speedup {s2:.2f}x is not > 1.0 on a "
                f"{cores}-core runner"
            )
        summary = ", ".join(
            f"{k[len('shards_'):]} shards: {v['speedup']:.2f}x"
            for k, v in sorted(fresh_scaling.items())
            if k.startswith("shards_")
        )
        print(f"bench gate: scaling on {cores} core(s): {summary}")

    # Incremental (log-structured) index: the merged {segments ∪ tail}
    # search must agree with the monolithic engine — a hard failure at
    # any tolerance. Throughput numbers are informational: the append
    # path is dominated by tail-tree maintenance, which the kernel gate
    # already covers.
    fresh_inc = fresh.get("incremental")
    if fresh_inc is not None:
        if fresh_inc.get("hit_streams_match") is not True:
            fail(
                "fresh incremental run did not certify merged-vs-monolithic "
                "hit-stream equality"
            )
        append = fresh_inc.get("append", {})
        reopen = fresh_inc.get("reopen", {})
        search = fresh_inc.get("search", {})
        print(
            f"bench gate: incremental: append "
            f"{append.get('symbols_per_sec', 0):,.0f} symbols/sec "
            f"({append.get('segments', '?')} segments + "
            f"{append.get('tail_sequences', '?')} tail), reopen "
            f"{reopen.get('wall_s', 0):.3f}s "
            f"({reopen.get('records_replayed', '?')} records replayed), "
            f"merged/mono search {search.get('merged_vs_mono', 0):.2f}x "
            f"(informational)"
        )

    # Fused batch kernel: per-query bit-identity against single-engine
    # streams is a hard failure at any tolerance, and the fused
    # throughput (virtual columns served per second of fused wall time)
    # gates like the kernel. The >=1.5x aggregate-speedup acceptance
    # bar is asserted on full-size runs — the committed baseline always,
    # the fresh file when it is also a full run; a quick fresh run (one
    # rep on a small database, as in CI) reports its ratio
    # informationally since the baseline wall times there are too short
    # to ratio reliably.
    base_batch = baseline.get("batch")
    fresh_batch = fresh.get("batch")
    if fresh_batch is not None:
        if fresh_batch.get("hit_streams_identical") is not True:
            fail(
                "fresh batch run did not certify fused-vs-single hit-stream "
                "identity"
            )
        for section, label in (
            ("mem_fused", "fused mem"),
            ("disk_warm_fused", "fused warm disk"),
        ):
            if base_batch is None or section not in base_batch:
                continue
            base_cps = base_batch[section]["virtual_columns_per_sec"]
            fresh_cps = fresh_batch[section]["virtual_columns_per_sec"]
            floor = base_cps * (1.0 - tolerance)
            verdict = "ok" if fresh_cps >= floor else "REGRESSION"
            print(
                f"bench gate: {label} virtual columns/sec: fresh "
                f"{fresh_cps:,.0f} vs baseline {base_cps:,.0f} (floor "
                f"{floor:,.0f} at {tolerance:.0%} tolerance) -> {verdict}"
            )
            if fresh_cps < floor:
                fail(
                    f"{label} throughput regressed more than {tolerance:.0%} "
                    f"({fresh_cps:,.0f} < {floor:,.0f})"
                )
        for name, batch, full in (
            ("baseline", base_batch, base_batch is not None
             and batch_is_full(base_batch)),
            ("fresh", fresh_batch, batch_is_full(fresh_batch)),
        ):
            if batch is None:
                continue
            speedup = batch.get("disk_warm_fused_speedup")
            if speedup is None:
                continue
            if full:
                verdict = "ok" if speedup >= 1.5 else "BELOW TARGET"
                print(
                    f"bench gate: {name} warm-disk fused speedup: "
                    f"{speedup:.2f}x (target >= 1.5x) -> {verdict}"
                )
                if speedup < 1.5:
                    fail(
                        f"{name} warm-disk fused batch speedup {speedup:.2f}x "
                        f"is below the 1.5x acceptance target"
                    )
            else:
                print(
                    f"bench gate: {name} warm-disk fused speedup: "
                    f"{speedup:.2f}x (quick run, informational)"
                )
        mem_speedup = fresh_batch.get("mem_fused_speedup")
        if mem_speedup is not None:
            print(
                f"bench gate: fresh mem fused speedup: {mem_speedup:.2f}x, "
                f"physical sweep reduction "
                f"{fresh_batch.get('physical_sweep_reduction', 0):.2f}x "
                f"(informational)"
            )

    print("bench gate: PASS")


if __name__ == "__main__":
    main()
