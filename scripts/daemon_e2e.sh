#!/usr/bin/env bash
# End-to-end exercise of the search daemon (`oasis serve` + `oasis
# client`), as run by the daemon-e2e CI job. Asserts:
#
#   - concurrent clients receive hit streams bit-identical to the
#     offline `oasis search` CLI on the same fixture database;
#   - a budget-capped query streams a prefix and reports the typed
#     budget-exhausted outcome;
#   - a mid-stream disconnect aborts one request without harming the
#     daemon;
#   - the stats verb reports SLO counters and latency quantiles;
#   - a saturated daemon (workers=1, queue-depth=0) answers with a
#     typed overload reject (client exit 3), not a hang;
#   - shutdown drains, exits 0, and unlinks the socket (leak check).
#
# Usage: daemon_e2e.sh [path-to-oasis_cli.exe]
# Runs in a private temp dir; any daemon crash or leaked socket fails.
set -euo pipefail

CLI=$(readlink -f "${1:-_build/default/bin/oasis_cli.exe}")
[ -x "$CLI" ] || { echo "daemon-e2e: CLI not found at $CLI" >&2; exit 1; }

WORK=$(mktemp -d)
SOCK="$WORK/oasis.sock"
SOCK2="$WORK/oasis2.sock"
DAEMON_PID=""
DAEMON2_PID=""
cleanup() {
  [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
  [ -n "$DAEMON2_PID" ] && kill "$DAEMON2_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT
cd "$WORK"

fail() { echo "daemon-e2e: FAIL: $*" >&2; exit 1; }
alive() { kill -0 "$1" 2>/dev/null; }

wait_ready() { # socket path
  for _ in $(seq 1 100); do
    if "$CLI" client ping --socket "$1" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  return 1
}

echo "== fixture"
"$CLI" generate --kind protein --symbols 30000 --seed 11 -o db.fa

# Queries sampled from the database itself: guaranteed strong local
# alignments, so every stream is non-empty and deterministic.
mapfile -t LINES < <(grep -v '^>' db.fa | awk 'length($0) >= 40' | head -6)
[ "${#LINES[@]}" -ge 5 ] || fail "fixture has too few usable sequences"
QUERIES=()
for i in 0 1 2 3; do QUERIES+=("${LINES[$i]:$((i * 3)):24}"); done
DISC_QUERY="${LINES[4]:0:16}"

echo "== offline references (oasis search)"
for i in 0 1 2 3; do
  "$CLI" search --db db.fa -q "${QUERIES[$i]}" --min-score 60 \
    | grep -E '^ *[0-9]+\.' > "search_$i.out" || true
  [ -s "search_$i.out" ] || fail "reference query $i produced no hits"
done
# The disconnect query runs at a loose threshold so it has >= 2 hits to
# cut between.
"$CLI" search --db db.fa -q "$DISC_QUERY" --min-score 25 \
  | grep -E '^ *[0-9]+\.' > search_disc.out || true
[ "$(wc -l < search_disc.out)" -ge 2 ] || fail "disconnect query needs >= 2 hits"

echo "== start daemon"
"$CLI" serve --db db.fa --socket "$SOCK" --workers 4 --queue-depth 8 \
  --allow-sleep > daemon.log 2>&1 &
DAEMON_PID=$!
wait_ready "$SOCK" || { cat daemon.log >&2; fail "daemon did not come up"; }

echo "== 4 concurrent clients vs offline search (bit-identical streams)"
CPIDS=()
for i in 0 1 2 3; do
  "$CLI" client search --socket "$SOCK" --query "${QUERIES[$i]}" \
    --min-score 60 > "client_$i.out" &
  CPIDS+=($!)
done
for pid in "${CPIDS[@]}"; do wait "$pid" || fail "concurrent client exited non-zero"; done
for i in 0 1 2 3; do
  diff -u "search_$i.out" "client_$i.out" \
    || fail "client $i stream differs from oasis search"
done
echo "   all 4 streams identical"

echo "== budget-exhausted query (typed outcome, prefix stream)"
"$CLI" client search --socket "$SOCK" --query "$DISC_QUERY" \
  --min-score 25 --max-columns 256 > budget.out
grep -q '^# budget exhausted: unreported hits score <= ' budget.out \
  || { cat budget.out >&2; fail "no budget-exhausted report"; }
# Online property: whatever was streamed before the budget ran out must
# be a non-empty prefix of the full stream.
grep -E '^ *[0-9]+\.' budget.out > budget_hits.out || true
[ -s budget_hits.out ] || fail "budget query streamed no hits before exhausting"
head -n "$(wc -l < budget_hits.out)" search_disc.out > budget_ref.out
diff -u budget_ref.out budget_hits.out \
  || fail "budget-capped stream is not a prefix of the full stream"
echo "   $(wc -l < budget_hits.out) hits streamed before budget, typed outcome reported"

echo "== mid-stream disconnect (daemon must survive)"
"$CLI" client search --socket "$SOCK" --query "$DISC_QUERY" \
  --min-score 25 --disconnect-after 1 > disc.out
grep -q '^# disconnected after 1 hits' disc.out \
  || { cat disc.out >&2; fail "client did not cut after 1 hit"; }
diff -u <(head -1 search_disc.out) <(grep -E '^ *[0-9]+\.' disc.out) \
  || fail "pre-disconnect hit differs from oasis search"
alive "$DAEMON_PID" || fail "daemon died after client disconnect"
"$CLI" client ping --socket "$SOCK" >/dev/null || fail "daemon unresponsive after disconnect"

echo "== stats verb (SLO counters + latency quantiles)"
"$CLI" client stats --socket "$SOCK" > stats.out
cat stats.out
for key in serve.accepted serve.completed serve.latency_us_p50 \
           serve.latency_us_p99 serve.queue_wait_us_p50; do
  grep -q "$key" stats.out || fail "stats output missing $key"
done
COMPLETED=$(awk '$1 == "serve.completed" { print $2 }' stats.out)
[ "${COMPLETED:-0}" -ge 5 ] || fail "stats report only $COMPLETED completed requests"

echo "== overload reject (workers=1, queue-depth=0)"
"$CLI" serve --db db.fa --socket "$SOCK2" --workers 1 --queue-depth 0 \
  --allow-sleep > daemon2.log 2>&1 &
DAEMON2_PID=$!
wait_ready "$SOCK2" || { cat daemon2.log >&2; fail "saturation daemon did not come up"; }
"$CLI" client sleep --socket "$SOCK2" --ms 5000 > sleeper.out &
SLEEPER_PID=$!
REJECTED=0
for _ in $(seq 1 50); do
  set +e
  "$CLI" client ping --socket "$SOCK2" > ping.out 2> ping.err
  rc=$?
  set -e
  if [ "$rc" -eq 3 ]; then
    grep -q 'rejected: overloaded' ping.err \
      || { cat ping.err >&2; fail "exit 3 without a typed overload message"; }
    REJECTED=1
    break
  fi
  sleep 0.1
done
[ "$REJECTED" -eq 1 ] || fail "saturated daemon never produced a typed overload reject"
echo "   typed reject: $(cat ping.err)"
wait "$SLEEPER_PID" || fail "sleeper client failed"
"$CLI" client ping --socket "$SOCK2" >/dev/null || fail "daemon did not recover after saturation"
"$CLI" client shutdown --socket "$SOCK2" >/dev/null
wait "$DAEMON2_PID" || fail "saturation daemon exited non-zero"
DAEMON2_PID=""
[ ! -e "$SOCK2" ] || fail "saturation daemon leaked its socket file"

echo "== shutdown (drain, exit 0, no leaked socket)"
alive "$DAEMON_PID" || fail "daemon crashed during the run"
"$CLI" client shutdown --socket "$SOCK" >/dev/null
wait "$DAEMON_PID" || fail "daemon exited non-zero"
DAEMON_PID=""
[ ! -e "$SOCK" ] || fail "daemon leaked its socket file"

echo "daemon-e2e: PASS"
