#!/usr/bin/env python3
"""Validator for `oasis search --trace` output.

Accepts both trace formats the CLI writes (Chrome trace_event JSON
array for .json/.trace paths, JSONL otherwise — the file content is
sniffed, not the extension) and checks:

  1. Schema completeness: every event carries name/ph/ts/pid/tid with
     the right types, instant events carry the trace_event scope field,
     and args (when present) is an object.
  2. Monotonic timestamps: `ts` never decreases in emission order
     across instant ("i") and counter ("C") events. Complete ("X")
     spans are exempt — they are summary spans written at close time
     with a start in the past.
  3. Counter agreement: the closing "counters" event must be present,
     and for single-engine traces (args.sharded == false) the number of
     "expand" events must equal its nodes_expanded counter. Sharded
     traces carry merge-level events (frontier/release), not per-node
     engine events, so the cross-check is skipped.

Exit status 0 on a valid trace, 1 otherwise.

Usage: trace_check.py TRACE_FILE
"""

import argparse
import json
import sys

REQUIRED = {"name": str, "ph": str, "ts": int, "pid": int, "tid": int}


def fail(msg: str) -> None:
    print(f"trace check: FAIL: {msg}")
    sys.exit(1)


def load_events(path: str):
    with open(path) as f:
        text = f.read()
    stripped = text.lstrip()
    if not stripped:
        fail(f"{path} is empty")
    if stripped.startswith("["):
        try:
            events = json.loads(text)
        except json.JSONDecodeError as e:
            fail(f"{path}: not valid JSON ({e})")
        if not isinstance(events, list):
            fail(f"{path}: top-level JSON is not an array")
        return events, "chrome"
    events = []
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError as e:
            fail(f"{path}:{lineno}: not valid JSON ({e})")
    return events, "jsonl"


def check_schema(i: int, ev) -> None:
    if not isinstance(ev, dict):
        fail(f"event {i}: not an object")
    for key, ty in REQUIRED.items():
        if key not in ev:
            fail(f"event {i} ({ev.get('name', '?')}): missing field {key!r}")
        if not isinstance(ev[key], ty):
            fail(
                f"event {i} ({ev.get('name', '?')}): field {key!r} is "
                f"{type(ev[key]).__name__}, expected {ty.__name__}"
            )
    if ev["ts"] < 0:
        fail(f"event {i} ({ev['name']}): negative timestamp")
    if ev["ph"] == "i" and ev.get("s") not in ("t", "p", "g"):
        fail(f"event {i} ({ev['name']}): instant event without scope field")
    if ev["ph"] == "X" and not isinstance(ev.get("dur"), int):
        fail(f"event {i} ({ev['name']}): complete event without integer dur")
    if "args" in ev and not isinstance(ev["args"], dict):
        fail(f"event {i} ({ev['name']}): args is not an object")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace")
    args = parser.parse_args()

    events, fmt = load_events(args.trace)
    if not events:
        fail(f"{args.trace}: no events")

    last_ts = None
    expand_count = 0
    counters = None
    names = {}
    for i, ev in enumerate(events):
        check_schema(i, ev)
        names[ev["name"]] = names.get(ev["name"], 0) + 1
        if ev["ph"] in ("i", "C"):
            if last_ts is not None and ev["ts"] < last_ts:
                fail(
                    f"event {i} ({ev['name']}): timestamp {ev['ts']} < "
                    f"previous {last_ts} (non-monotonic)"
                )
            last_ts = ev["ts"]
        if ev["name"] == "expand":
            expand_count += 1
        if ev["name"] == "counters":
            counters = ev.get("args", {})

    if counters is None:
        fail("no closing 'counters' summary event")
    nodes_expanded = counters.get("nodes_expanded")
    if not isinstance(nodes_expanded, int):
        fail("'counters' event lacks an integer nodes_expanded")
    if counters.get("sharded") is True:
        print(
            "trace check: sharded trace — skipping expand-vs-counter "
            f"cross-check (merge events only; nodes_expanded={nodes_expanded})"
        )
    elif expand_count != nodes_expanded:
        fail(
            f"{expand_count} 'expand' events but nodes_expanded counter is "
            f"{nodes_expanded}"
        )

    summary = ", ".join(f"{name}={count}" for name, count in sorted(names.items()))
    print(
        f"trace check: PASS ({fmt}, {len(events)} events, "
        f"monotonic through ts={last_ts}: {summary})"
    )


if __name__ == "__main__":
    main()
