(* Nucleotide search over a disk-resident index.

   The paper also evaluates OASIS on the Drosophila genome (§4.1); this
   example builds a synthetic genomic database, serializes the suffix
   tree into the paper's three-component disk layout (§3.4), and runs
   the search through a small buffer pool — printing per-component hit
   ratios, the data behind Figure 8.

     dune exec examples/dna_search.exe -- [db-symbols] [pool-blocks]
*)

let () =
  let target_symbols =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 400_000
  in
  let capacity =
    if Array.length Sys.argv > 2 then int_of_string Sys.argv.(2) else 512
  in
  let rng = Workload.Rng.create ~seed:77 in
  let db =
    Workload.Generate.dna_database rng ~gc:0.43 ~num_sequences:24
      ~target_symbols ()
  in
  Format.printf "genome: %d scaffolds, %d nt@."
    (Bioseq.Database.num_sequences db)
    (Bioseq.Database.total_symbols db);

  (* Build in memory, then serialize to the paged representation. *)
  let tree = Suffix_tree.Ukkonen.build db in
  let dt, pool = Storage.Disk_tree.of_tree ~block_size:2048 ~capacity tree in
  let r = Storage.Disk_tree.size_report dt in
  Format.printf
    "disk image: %.2f bytes/symbol (symbols %dK, internal %dK, leaves %dK); \
     pool %d blocks of 2K@.@."
    r.Storage.Disk_tree.bytes_per_symbol
    (r.Storage.Disk_tree.symbols_bytes / 1024)
    (r.Storage.Disk_tree.internal_bytes / 1024)
    (r.Storage.Disk_tree.leaves_bytes / 1024)
    capacity;

  (* A probe with a planted, slightly diverged occurrence. *)
  let probe = Workload.Motif.sample rng ~db ~len:24 ~mutation_rate:0.08 ~id:"probe" () in
  Format.printf "probe: %s@.@." (Bioseq.Sequence.to_string probe);

  let matrix = Scoring.Matrices.dna_blast in
  let config =
    Oasis.Engine.config ~matrix ~gap:(Scoring.Gap.linear 4) ~min_score:30 ()
  in
  let engine = Oasis.Engine.Disk.create ~source:dt ~db ~query:probe config in
  let hits = Oasis.Engine.Disk.run ~limit:5 engine in
  Format.printf "top hits (online, disk-backed):@.";
  List.iter
    (fun h ->
      let s = Bioseq.Database.seq db h.Oasis.Hit.seq_index in
      Format.printf "  %s score %d ending at %d@." (Bioseq.Sequence.id s)
        h.Oasis.Hit.score h.Oasis.Hit.target_stop)
    hits;

  Format.printf "@.buffer pool behaviour (block size %d):@."
    (Storage.Buffer_pool.block_size pool);
  List.iter
    (fun (name, comp) ->
      let s = Storage.Disk_tree.component_stats dt comp in
      Format.printf "  %-14s %7d hits %7d misses  hit ratio %.3f@." name
        s.Storage.Buffer_pool.hits s.Storage.Buffer_pool.misses
        (Storage.Buffer_pool.hit_ratio s))
    [
      ("symbols", Storage.Disk_tree.Symbols);
      ("internal nodes", Storage.Disk_tree.Internal_nodes);
      ("leaves", Storage.Disk_tree.Leaves);
    ];
  let c = Oasis.Engine.Disk.counters engine in
  Format.printf "@.search work: %d columns, %d nodes expanded, queue peak %d@."
    c.Oasis.Engine.columns c.Oasis.Engine.nodes_expanded
    c.Oasis.Engine.max_queue
