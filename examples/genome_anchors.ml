(* Whole-genome comparison anchors and repeat analysis — the two other
   suffix-tree applications the paper's related-work section points at
   (§5: genome alignment à la MUMmer, repeat exploration à la REPuter),
   running on the very same tree substrate OASIS searches.

     dune exec examples/genome_anchors.exe
*)

let alphabet = Bioseq.Alphabet.dna

let () =
  let rng = Workload.Rng.create ~seed:13 in
  (* An "ancestral" genome and a diverged copy: a few rearranged blocks
     with point mutations, the classic MUM-anchor setting. *)
  let block len = Bioseq.Sequence.to_string (Workload.Generate.dna_sequence rng ~id:"b" ~len) in
  let b1 = block 60 and b2 = block 50 and b3 = block 40 and spacer = block 12 in
  let genome_a =
    Bioseq.Sequence.make ~alphabet ~id:"genomeA" (b1 ^ spacer ^ b2 ^ b3)
  in
  let mutate s =
    Bioseq.Sequence.to_string
      (Workload.Motif.mutate rng ~rate:0.03
         (Bioseq.Sequence.make ~alphabet ~id:"tmp" s))
  in
  (* The copy swaps blocks 2 and 3 and mutates lightly. *)
  let genome_b =
    Bioseq.Sequence.make ~alphabet ~id:"genomeB"
      (mutate b1 ^ block 10 ^ mutate b3 ^ mutate b2)
  in
  Format.printf "genome A: %d nt, genome B: %d nt@.@."
    (Bioseq.Sequence.length genome_a)
    (Bioseq.Sequence.length genome_b);

  (* 1. MUM anchors: unique maximal matches, the seeds genome aligners
     chain into a global alignment. *)
  let mums = Suffix_tree.Mums.find ~min_length:8 genome_a genome_b in
  Format.printf "MUM anchors (min length 8):@.";
  List.iter
    (fun m ->
      Format.printf "  A[%4d..%4d) = B[%4d..%4d)  %dnt  %s@."
        m.Suffix_tree.Mums.pos_a
        (m.Suffix_tree.Mums.pos_a + m.Suffix_tree.Mums.length)
        m.Suffix_tree.Mums.pos_b
        (m.Suffix_tree.Mums.pos_b + m.Suffix_tree.Mums.length)
        m.Suffix_tree.Mums.length
        (if String.length m.Suffix_tree.Mums.text > 24 then
           String.sub m.Suffix_tree.Mums.text 0 21 ^ "..."
         else m.Suffix_tree.Mums.text))
    mums;
  (* The block swap shows up as anchors out of order in B. *)
  let b_positions = List.map (fun m -> m.Suffix_tree.Mums.pos_b) mums in
  Format.printf "  anchor order in B: %s -> %s@.@."
    (String.concat "," (List.map string_of_int b_positions))
    (if List.sort compare b_positions = b_positions then
       "collinear (no rearrangement)"
     else "NOT collinear: rearrangement detected");

  (* 2. Repeats inside one genome (REPuter-style). *)
  let tandem = block 15 in
  let repeat_genome =
    Bioseq.Sequence.make ~alphabet ~id:"rep"
      (block 30 ^ tandem ^ block 20 ^ tandem ^ block 25 ^ tandem)
  in
  let tree = Suffix_tree.Ukkonen.build (Bioseq.Database.make [ repeat_genome ]) in
  let repeats = Suffix_tree.Repeats.maximal ~min_length:12 tree in
  Format.printf "maximal repeats (>= 12 nt) in a %d nt genome:@."
    (Bioseq.Sequence.length repeat_genome);
  List.iteri
    (fun i r ->
      if i < 5 then
        Format.printf "  %2dnt x%d at %s: %s@." r.Suffix_tree.Repeats.length
          (List.length r.Suffix_tree.Repeats.positions)
          (String.concat ","
             (List.map string_of_int r.Suffix_tree.Repeats.positions))
          (if String.length r.Suffix_tree.Repeats.text > 20 then
             String.sub r.Suffix_tree.Repeats.text 0 17 ^ "..."
           else r.Suffix_tree.Repeats.text))
    repeats
