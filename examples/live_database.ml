(* A live sequence database: batches of new sequences arrive, the
   suffix-tree index grows incrementally (the paper's §6 "incremental
   updates" future work), and a standing query is re-answered after each
   batch with results ordered by length-adjusted E-value (§4.3).

     dune exec examples/live_database.exe
*)

let alphabet = Bioseq.Alphabet.protein
let matrix = Scoring.Matrices.pam30
let gap = Scoring.Gap.linear 10

let params =
  Scoring.Karlin.estimate ~matrix ~freqs:Scoring.Background.robinson_robinson ()

let () =
  let rng = Workload.Rng.create ~seed:42 in
  (* The standing query: a peptide motif a scientist is watching for. *)
  let query = Bioseq.Sequence.make ~alphabet ~id:"watch" "DKDGDGTITTKEL" in

  (* Day 0: a small initial database. *)
  let db = ref (Workload.Generate.protein_database rng ~target_symbols:20_000 ()) in
  let tree = ref (Suffix_tree.Ukkonen.build !db) in

  let answer day =
    let engine =
      Oasis.Engine.Mem.create ~source:!tree ~db:!db ~query
        (Oasis.Engine.config ~matrix ~gap ~min_score:35 ())
    in
    let stream =
      Oasis.Evalue_stream.Mem.create ~driver:engine ~db:!db ~params
        ~query_length:(Bioseq.Sequence.length query)
    in
    Format.printf "day %d: %d sequences, %d residues indexed@." day
      (Bioseq.Database.num_sequences !db)
      (Bioseq.Database.total_symbols !db);
    let rec drain rank =
      if rank <= 5 then
        match Oasis.Evalue_stream.Mem.next stream with
        | None -> ()
        | Some (hit, evalue) ->
          let s = Bioseq.Database.seq !db hit.Oasis.Hit.seq_index in
          Format.printf "  %d. %-12s score %-3d E=%.3g (%d aa)@." rank
            (Bioseq.Sequence.id s) hit.Oasis.Hit.score evalue
            (Bioseq.Sequence.length s);
          drain (rank + 1)
    in
    drain 1;
    Format.printf "@."
  in
  answer 0;

  (* Each "day", a batch of new sequences arrives — some containing
     diverged copies of the watched motif. Index them incrementally:
     only the new residues are processed. *)
  for day = 1 to 3 do
    let batch =
      List.init 40 (fun i ->
          let s =
            Workload.Generate.protein_sequence rng
              ~id:(Printf.sprintf "day%d_%03d" day i)
              ~len:(Workload.Generate.swissprot_length rng)
          in
          if i mod 20 = 0 then begin
            (* Plant a diverged family member in a couple of entries. *)
            let mutated =
              Workload.Motif.mutate rng ~rate:(0.1 *. float_of_int day) query
            in
            let codes = Bytes.copy (Bioseq.Sequence.codes s) in
            let mlen = Bioseq.Sequence.length mutated in
            if Bytes.length codes > mlen then begin
              Bytes.blit (Bioseq.Sequence.codes mutated) 0 codes 0 mlen;
              Bioseq.Sequence.of_codes ~alphabet ~id:(Bioseq.Sequence.id s) codes
            end
            else s
          end
          else s)
    in
    let added = List.fold_left (fun a s -> a + Bioseq.Sequence.length s) 0 batch in
    let t0 = Unix.gettimeofday () in
    db := Bioseq.Database.append !db batch;
    tree := Suffix_tree.Ukkonen.extend !tree !db;
    Format.printf "-- batch of %d sequences (%d residues) indexed in %.1f ms@."
      (List.length batch) added
      (1000. *. (Unix.gettimeofday () -. t0));
    answer day
  done
