(* Query-by-humming: local alignment on melodies.

   The paper's conclusion (§6) proposes applying OASIS to "identifying
   closely matching musical pieces based on a few hummed notes". The
   whole stack is alphabet-generic, so this takes a custom alphabet of
   melodic intervals, a custom substitution matrix that forgives
   near-miss intervals, and searches a small tune corpus with a sloppy
   hummed fragment.

     dune exec examples/melody_search.exe
*)

(* Melodies are encoded as pitch-interval classes between consecutive
   notes: D = big leap down, S = step down, R = repeat, U = step up,
   B = big leap up (alphabets are case-insensitive, so the five classes
   need distinct letters). A hummed query rarely gets interval sizes
   exactly right but usually gets contour (direction) right, so the
   matrix scores same-direction near-misses mildly positive. *)

let intervals = Bioseq.Alphabet.make ~name:"intervals" ~symbols:"DSRUB"

let melody_matrix =
  (* Order: D=0 S=1 R=2 U=3 B=4. *)
  Scoring.Submat.make ~alphabet:intervals ~name:"contour"
    [|
      [| 3; 1; -1; -2; -3 |];
      [| 1; 3; 0; -2; -2 |];
      [| -1; 0; 3; 0; -1 |];
      [| -2; -2; 0; 3; 1 |];
      [| -3; -2; -1; 1; 3 |];
    |]

let tunes =
  [
    (* Contours transcribed loosely; enough structure for the demo. *)
    ("ode_to_joy", "RUSUSSSSRUSUSSRRUSUSSSSRUSUSS");
    ("twinkle", "RUBRUSRSRSRSSUBR");
    ("happy_birthday", "RUSBSRUSBSRBSSSD");
    ("greensleeves", "UBUSUDSUSSSRUBUS");
    ("scale_up", "UUUUUUUUUUUUUUU");
    ("scale_down", "SSSSSSSSSSSSSSS");
  ]

let () =
  let db =
    Bioseq.Database.make
      (List.map
         (fun (id, contour) -> Bioseq.Sequence.make ~alphabet:intervals ~id contour)
         tunes)
  in
  let tree = Suffix_tree.Ukkonen.build db in

  (* A hummed "happy birthday" opening with two contour mistakes:
     correct is R U S B S R U S B S ... hummed as R U S U S R U S B S. *)
  let hummed = Bioseq.Sequence.make ~alphabet:intervals ~id:"hummed" "RUSBSRUSUS" in
  Format.printf "hummed contour: %s@.@." (Bioseq.Sequence.to_string hummed);

  let config =
    Oasis.Engine.config ~matrix:melody_matrix ~gap:(Scoring.Gap.linear 2)
      ~min_score:8 ()
  in
  let engine = Oasis.Engine.Mem.create ~source:tree ~db ~query:hummed config in
  Format.printf "matches, best first:@.";
  let rec stream rank =
    match Oasis.Engine.Mem.next engine with
    | None -> ()
    | Some hit ->
      let tune = Bioseq.Database.seq db hit.Oasis.Hit.seq_index in
      Format.printf "  %d. %-16s score %2d@." rank (Bioseq.Sequence.id tune)
        hit.Oasis.Hit.score;
      if rank = 1 then begin
        (* Show where in the tune the hum landed. *)
        let a =
          Align.Smith_waterman.align ~matrix:melody_matrix
            ~gap:(Scoring.Gap.linear 2) ~query:hummed ~target:tune
        in
        Format.printf "@[<v 5>     %a@]@."
          (Align.Alignment.pp ~query:hummed ~target:tune)
          a
      end;
      stream (rank + 1)
  in
  stream 1
