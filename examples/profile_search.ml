(* Profile (PSSM) search: a PSI-BLAST-style iteration on top of OASIS.

   A single family member used as a query misses distant relatives; a
   position-specific profile built from several known members captures
   which positions are conserved and recovers them — and the OASIS
   engine runs the profile search exactly, online, like any other query.

     dune exec examples/profile_search.exe
*)

let alphabet = Bioseq.Alphabet.protein
let matrix = Scoring.Matrices.pam30
let gap = Scoring.Gap.linear 10

let () =
  let rng = Workload.Rng.create ~seed:99 in
  (* A protein family: one ancestor, members at varying divergence. *)
  let ancestor = Workload.Generate.protein_sequence rng ~id:"ancestor" ~len:24 in
  let member rate i =
    let m = Workload.Motif.mutate rng ~rate ancestor in
    Bioseq.Sequence.of_codes ~alphabet
      ~id:(Printf.sprintf "member%02d" i)
      (Bioseq.Sequence.codes m)
  in
  (* Known members (training set) and hidden members planted in the
     database at higher divergence. *)
  let known = List.init 6 (fun i -> member 0.15 i) in
  let db = Workload.Generate.protein_database rng ~target_symbols:60_000 () in
  let db =
    List.fold_left
      (fun db rate ->
        Workload.Generate.plant rng ~db ~motif:ancestor ~copies:6
          ~mutation_rate:rate)
      db [ 0.2; 0.35; 0.45 ]
  in
  let tree = Suffix_tree.Ukkonen.build db in
  Format.printf "database: %d sequences, %d residues; family of %d known \
                 members@.@."
    (Bioseq.Database.num_sequences db)
    (Bioseq.Database.total_symbols db)
    (List.length known);

  let min_score = 40 in

  (* Baseline: search with one known member as a plain query. *)
  let single = List.hd known in
  let single_hits =
    Oasis.Engine.Mem.run
      (Oasis.Engine.Mem.create ~source:tree ~db ~query:single
         (Oasis.Engine.config ~matrix ~gap ~min_score ()))
  in

  (* Profile: log-odds PSSM from all known members (they are unaligned
     mutants of equal length, so the columns line up by construction). *)
  let profile =
    Scoring.Pssm.of_sequences ~freqs:Scoring.Background.robinson_robinson
      ~scale:3.0 known
  in
  let profile_hits =
    Oasis.Engine.Mem.run
      (Oasis.Engine.Mem.create_profile ~source:tree ~db ~profile ~gap
         ~min_score ())
  in

  Format.printf "single-member query (PAM30): %d hits@."
    (List.length single_hits);
  Format.printf "family profile (PSSM):       %d hits@.@."
    (List.length profile_hits);
  Format.printf "top profile hits (online, best first):@.";
  List.iteri
    (fun i h ->
      if i < 8 then
        Format.printf "  %d. %-12s profile score %d@." (i + 1)
          (Bioseq.Sequence.id (Bioseq.Database.seq db h.Oasis.Hit.seq_index))
          h.Oasis.Hit.score)
    profile_hits;
  (* Sanity: the exactness guarantee holds for profiles too. *)
  let sw, _ =
    Align.Smith_waterman.search_profile ~profile ~gap ~db ~min_score
  in
  Format.printf "@.profile engine equals profile Smith-Waterman: %b@."
    (List.map (fun h -> (h.Oasis.Hit.seq_index, h.Oasis.Hit.score)) profile_hits
     |> List.sort compare
    = (List.map (fun h -> Align.Smith_waterman.(h.seq_index, h.score)) sw
      |> List.sort compare))
