(* Peptide (short-query) search — the workload OASIS is designed for
   (§1: "queries using peptides ... are often used to find matching
   proteins").

   Builds a synthetic SWISS-PROT-like database, plants a peptide family
   into it, then answers the query three ways — OASIS (accurate,
   online), Smith-Waterman (accurate, exhaustive) and BLAST (heuristic)
   — and compares answers and work done.

     dune exec examples/peptide_search.exe -- [db-symbols]
*)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let () =
  let target_symbols =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 200_000
  in
  let rng = Workload.Rng.create ~seed:2003 in
  let matrix = Scoring.Matrices.pam30 in
  let gap = Scoring.Gap.linear 10 in

  Format.printf "building a %d-residue synthetic protein database...@."
    target_symbols;
  let db = Workload.Generate.protein_database rng ~target_symbols () in
  (* Plant a diverged peptide family: 8 mutated copies of the query's
     ancestral motif, so the database contains real homologs. *)
  let motif =
    Bioseq.Sequence.make ~alphabet:Bioseq.Alphabet.protein ~id:"ancestor"
      "DKDGDGCITTKEL"
  in
  let db = Workload.Generate.plant rng ~db ~motif ~copies:8 ~mutation_rate:0.15 in
  let query = Workload.Motif.mutate rng ~rate:0.1 motif in
  Format.printf "database: %d sequences, %d residues; query: %s (%d aa)@.@."
    (Bioseq.Database.num_sequences db)
    (Bioseq.Database.total_symbols db)
    (Bioseq.Sequence.to_string query)
    (Bioseq.Sequence.length query);

  let tree, t_build = time (fun () -> Suffix_tree.Ukkonen.build db) in
  Format.printf "suffix tree built in %.2fs@.@." t_build;

  (* The paper's selectivity setting: E = 20000, translated to a score
     threshold with Karlin-Altschul statistics (Equation 3). *)
  let params =
    Scoring.Karlin.estimate ~matrix ~freqs:Scoring.Background.robinson_robinson ()
  in
  let config =
    Oasis.Engine.config_for_evalue ~matrix ~gap ~params
      ~query_length:(Bioseq.Sequence.length query)
      ~db_symbols:(Bioseq.Database.total_symbols db)
      ~evalue:100. ()
  in
  Format.printf "score threshold for E=100: %d (%a)@.@." config.Oasis.Engine.min_score
    Scoring.Karlin.pp_params params;

  (* OASIS: online. Print the top 10 as they arrive, then finish. *)
  let engine = Oasis.Engine.Mem.create ~source:tree ~db ~query config in
  Format.printf "--- OASIS (online; top 10 shown as they stream out)@.";
  let t0 = Unix.gettimeofday () in
  let rec stream rank acc =
    match Oasis.Engine.Mem.next engine with
    | None -> acc
    | Some hit ->
      if rank <= 10 then
        Format.printf "  #%-3d %+6.4fs  seq %s  score %d@." rank
          (Unix.gettimeofday () -. t0)
          (Bioseq.Sequence.id (Bioseq.Database.seq db hit.Oasis.Hit.seq_index))
          hit.Oasis.Hit.score;
      stream (rank + 1) (hit :: acc)
  in
  let oasis_hits = List.rev (stream 1 []) in
  let t_oasis = Unix.gettimeofday () -. t0 in
  let c = Oasis.Engine.Mem.counters engine in

  (* Smith-Waterman: the accurate baseline. *)
  let (sw_hits, sw_stats), t_sw =
    time (fun () ->
        Align.Smith_waterman.search ~matrix ~gap ~query ~db
          ~min_score:config.Oasis.Engine.min_score)
  in

  (* BLAST: the heuristic baseline. *)
  let (blast_hits, _), t_blast =
    time (fun () ->
        let cfg = Blast.Search.default_protein ~evalue:100. ~matrix ~gap ~params () in
        Blast.Search.search cfg ~query ~db)
  in

  Format.printf "@.--- summary@.";
  Format.printf "  %-16s %8s %8s %12s@." "method" "time(s)" "hits" "DP columns";
  Format.printf "  %-16s %8.3f %8d %12d@." "OASIS" t_oasis
    (List.length oasis_hits) c.Oasis.Engine.columns;
  Format.printf "  %-16s %8.3f %8d %12d@." "Smith-Waterman" t_sw
    (List.length sw_hits) sw_stats.Align.Smith_waterman.columns;
  Format.printf "  %-16s %8.3f %8d %12s@." "BLAST" t_blast
    (List.length blast_hits) "-";
  Format.printf "  OASIS looked at %.1f%% of the columns S-W did.@."
    (100.
    *. float_of_int c.Oasis.Engine.columns
    /. float_of_int sw_stats.Align.Smith_waterman.columns);
  let agree =
    List.map (fun h -> (h.Oasis.Hit.seq_index, h.Oasis.Hit.score)) oasis_hits
    |> List.sort compare
    = (List.map
         (fun h -> Align.Smith_waterman.(h.seq_index, h.score))
         sw_hits
      |> List.sort compare)
  in
  Format.printf "  OASIS and S-W report identical (sequence, score) sets: %b@."
    agree;
  let missed = List.length oasis_hits - List.length blast_hits in
  Format.printf "  BLAST missed %d of %d matches (%.1f%%).@." missed
    (List.length oasis_hits)
    (100. *. float_of_int missed /. float_of_int (max 1 (List.length oasis_hits)))
