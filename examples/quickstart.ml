(* Quickstart: index a handful of protein sequences and run one OASIS
   search, printing hits as they stream out.

     dune exec examples/quickstart.exe
*)

let () =
  (* 1. A database: any list of sequences over one alphabet. *)
  let alphabet = Bioseq.Alphabet.protein in
  let db =
    Bioseq.Database.make
      [
        Bioseq.Sequence.make ~alphabet ~id:"calm_human"
          ~description:"calmodulin fragment"
          "ADQLTEEQIAEFKEAFSLFDKDGDGTITTKELGTVMRSLGQNPTEAELQDMINEVDADGNGTIDFPEFLTMMARKM";
        Bioseq.Sequence.make ~alphabet ~id:"tnnc1_like"
          ~description:"troponin-like EF hand"
          "MDDIYKAAVEQLTEEQKNEFKAAFDIFVLGAEDGCISTKELGKVMRMLGQNPTPEELQEMIDEVDEDGSGTVDFDEFLVMMVRCM";
        Bioseq.Sequence.make ~alphabet ~id:"unrelated"
          ~description:"random-ish sequence"
          "MSTNPKPQRKTKRNTNRRPQDVKFPGGGQIVGGVYLLPRRGPRLGVRATRKTSERSQPRGRRQPIPKARRPEGR";
      ]
  in

  (* 2. A suffix tree index over the database (built once, reusable for
     any number of queries). *)
  let tree = Suffix_tree.Ukkonen.build db in

  (* 3. A query and a search configuration: PAM30 and a fixed gap
     penalty of 10, the paper's setting for short protein queries. *)
  let query =
    Bioseq.Sequence.make ~alphabet ~id:"ef-hand-motif" "DKDGDGTITTKE"
  in
  let config =
    Oasis.Engine.config ~matrix:Scoring.Matrices.pam30
      ~gap:(Scoring.Gap.linear 10) ~min_score:30 ()
  in

  (* 4. Run. Results arrive online, best first; stop whenever you have
     seen enough. *)
  let engine = Oasis.Engine.Mem.create ~source:tree ~db ~query config in
  let rec drain rank =
    match Oasis.Engine.Mem.next engine with
    | None -> ()
    | Some hit ->
      let target = Bioseq.Database.seq db hit.Oasis.Hit.seq_index in
      Format.printf "#%d %s: %a@." rank (Bioseq.Sequence.id target) Oasis.Hit.pp
        hit;
      (* 5. Recover the full alignment for display: every reported hit
         is its sequence's best local alignment, so the S-W traceback
         reproduces it. *)
      let alignment =
        Align.Smith_waterman.align ~matrix:Scoring.Matrices.pam30
          ~gap:(Scoring.Gap.linear 10) ~query ~target
      in
      Format.printf "@[<v 2>  %a@]@.@." (Align.Alignment.pp ~query ~target)
        alignment;
      drain (rank + 1)
  in
  drain 1;
  let c = Oasis.Engine.Mem.counters engine in
  Format.printf "expanded %d DP columns over %d search nodes@."
    c.Oasis.Engine.columns c.Oasis.Engine.nodes_expanded
