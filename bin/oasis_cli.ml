(* The oasis command-line tool.

     oasis generate   synthesize a FASTA database (SWISS-PROT-like)
     oasis index      build the on-disk suffix tree for a FASTA file
     oasis search     run an OASIS local-alignment search
     oasis stats      database / index statistics

   See `oasis COMMAND --help`. *)

open Cmdliner

let alphabet_of_string = function
  | "protein" -> Ok Bioseq.Alphabet.protein
  | "dna" -> Ok Bioseq.Alphabet.dna
  | other -> Error (Printf.sprintf "unknown alphabet %S (protein|dna)" other)

let alphabet_conv =
  let parse s = Result.map_error (fun e -> `Msg e) (alphabet_of_string s) in
  let print ppf a = Format.pp_print_string ppf (Bioseq.Alphabet.name a) in
  Arg.conv (parse, print)

let matrix_conv =
  let parse s =
    match Scoring.Matrices.by_name s with
    | Some m -> Ok m
    | None ->
      Error
        (`Msg
           (Printf.sprintf "unknown matrix %S (available: %s)" s
              (String.concat ", "
                 (List.map Scoring.Submat.name Scoring.Matrices.all))))
  in
  let print ppf m = Format.pp_print_string ppf (Scoring.Submat.name m) in
  Arg.conv (parse, print)

let fasta_arg ~doc name =
  Arg.(required & opt (some file) None & info [ name ] ~docv:"FASTA" ~doc)

let opt_fasta_arg ~doc name =
  Arg.(value & opt (some file) None & info [ name ] ~docv:"FASTA" ~doc)

let alphabet_arg =
  Arg.(
    value
    & opt alphabet_conv Bioseq.Alphabet.protein
    & info [ "alphabet" ] ~docv:"ALPHABET" ~doc:"Sequence alphabet (protein|dna).")

(* --- generate --- *)

let generate_cmd =
  let run kind symbols seed out =
    let rng = Workload.Rng.create ~seed in
    let db =
      match kind with
      | "protein" -> Workload.Generate.protein_database rng ~target_symbols:symbols ()
      | "dna" -> Workload.Generate.dna_database rng ~target_symbols:symbols ()
      | other -> failwith (Printf.sprintf "unknown kind %S (protein|dna)" other)
    in
    let seqs =
      List.init (Bioseq.Database.num_sequences db) (Bioseq.Database.seq db)
    in
    Bioseq.Fasta.write_file out seqs;
    Printf.printf "wrote %d sequences (%d symbols) to %s\n"
      (Bioseq.Database.num_sequences db)
      (Bioseq.Database.total_symbols db)
      out
  in
  let kind =
    Arg.(value & opt string "protein" & info [ "kind" ] ~docv:"KIND"
           ~doc:"Database kind: protein (SWISS-PROT-like) or dna.")
  in
  let symbols =
    Arg.(value & opt int 100_000 & info [ "symbols" ] ~docv:"N"
           ~doc:"Total number of residues/nucleotides.")
  in
  let seed =
    Arg.(value & opt int 2003 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.")
  in
  let out =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Output FASTA path.")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Synthesize a random sequence database as FASTA.")
    Term.(const run $ kind $ symbols $ seed $ out)

(* --- index --- *)

let index_files dir =
  ( Filename.concat dir "symbols.dat",
    Filename.concat dir "internal.dat",
    Filename.concat dir "leaves.dat" )

let profile_filename = "qgram.prf"

let write_one_index ~layout ~external_build ~profile ~dir db =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let sym_p, int_p, leaf_p = index_files dir in
  let symbols = Storage.Device.file sym_p
  and internal = Storage.Device.file int_p
  and leaves = Storage.Device.file leaf_p in
  let prof = ref None in
  if external_build then
    Storage.External_build.write ~layout db ~symbols ~internal ~leaves
  else begin
    let tree = Suffix_tree.Ukkonen.build db in
    Storage.Disk_tree.write ~layout tree ~symbols ~internal ~leaves;
    if profile then begin
      let p = Quasar.Profile.build ~db ~tree () in
      Storage.Blob.save
        (Filename.concat dir profile_filename)
        (Quasar.Profile.to_bytes p);
      prof := Some p
    end
  end;
  let total =
    Storage.Device.length symbols + Storage.Device.length internal
    + Storage.Device.length leaves
  in
  List.iter Storage.Device.close [ symbols; internal; leaves ];
  (total, !prof)

let index_cmd =
  let run fasta alphabet dir clustered external_build shards profile =
    let seqs = Bioseq.Fasta.read_file ~alphabet fasta in
    let db = Bioseq.Database.make seqs in
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let layout =
      if clustered then Storage.Disk_tree.Clustered
      else Storage.Disk_tree.Position_indexed
    in
    if external_build then
      Printf.printf
        "building index externally (one first-symbol partition at a time, \
         largest holds %d suffixes) over %d sequences (%d symbols)...\n%!"
        (Storage.External_build.max_partition_occurrences db)
        (Bioseq.Database.num_sequences db)
        (Bioseq.Database.total_symbols db)
    else
      Printf.printf "building suffix tree over %d sequences (%d symbols)...\n%!"
        (Bioseq.Database.num_sequences db)
        (Bioseq.Database.total_symbols db);
    if profile && external_build then
      failwith
        "--profile needs the in-memory tree; it is incompatible with \
         --external";
    let total =
      if shards <= 1 then begin
        let bytes, prof = write_one_index ~layout ~external_build ~profile ~dir db in
        (match prof with
        | Some p ->
          Printf.printf "q-gram profile: %d entries, %d bytes (q=%d)\n"
            (Quasar.Profile.num_nodes p) (Quasar.Profile.bytes p)
            (Quasar.Profile.q p)
        | None -> ());
        bytes
      end
      else begin
        let pieces = Oasis.Shard.plan ~shards db in
        let results =
          Array.mapi
            (fun i (piece : Oasis.Shard.piece) ->
              let sdir = Storage.Shard_manifest.shard_dir dir i in
              let bytes, prof =
                write_one_index ~layout ~external_build ~profile ~dir:sdir
                  piece.db
              in
              Printf.printf "  shard%d: %d sequences (%d symbols), %d bytes%s\n%!"
                i
                (Bioseq.Database.num_sequences piece.db)
                (Bioseq.Database.total_symbols piece.db)
                bytes
                (match prof with
                | Some p ->
                  Printf.sprintf " + %d-byte q-gram profile"
                    (Quasar.Profile.bytes p)
                | None -> "");
              (bytes, prof))
            pieces
        in
        Storage.Shard_manifest.save ~dir
          (Array.mapi
             (fun i (piece : Oasis.Shard.piece) ->
               {
                 Storage.Shard_manifest.first_seq = piece.first_seq;
                 num_seqs = Bioseq.Database.num_sequences piece.db;
                 symbols = Bioseq.Database.total_symbols piece.db;
                 grams =
                   (match snd results.(i) with
                   | Some p -> Quasar.Profile.root_grams p
                   | None -> Bytes.empty);
               })
             pieces);
        Printf.printf "manifest: %d shards%s\n" (Array.length pieces)
          (if profile then " (root gram bitsets embedded)" else "");
        Array.fold_left (fun acc (b, _) -> acc + b) 0 results
      end
    in
    Printf.printf "index written to %s: %d bytes (%.2f bytes/symbol)\n" dir total
      (float_of_int total /. float_of_int (Bioseq.Database.data_length db))
  in
  let dir =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"DIR"
           ~doc:"Output index directory.")
  in
  let clustered =
    Arg.(value & flag & info [ "clustered" ]
           ~doc:"Use the clustered leaf layout (better buffer-pool locality; \
                 see the paper's section 4.5).")
  in
  let external_build =
    Arg.(value & flag & info [ "external" ]
           ~doc:"Hunt-style partitioned construction (section 3.4.1): builds \
                 one first-symbol partition at a time, bounding peak tree \
                 memory by the largest partition.")
  in
  let shards =
    Arg.(value & opt int 1 & info [ "shards" ] ~docv:"K"
           ~doc:"Partition the database into K shards (cut at sequence \
                 boundaries, balanced by symbols) and build one index per \
                 shard under shard0/..shardK-1/ plus a manifest; \
                 $(b,oasis search --index) then runs the shards in parallel.")
  in
  let profile =
    Arg.(value & flag & info [ "profile" ]
           ~doc:"Also build the exactness-preserving q-gram profile \
                 (DESIGN.md section 2k) and store it as qgram.prf next to \
                 each index (embedding per-shard root gram bitsets in the \
                 manifest); $(b,oasis search --profile) then arms the \
                 filter tier without rebuilding it. Incompatible with \
                 --external (the profile walk needs the in-memory tree).")
  in
  Cmd.v
    (Cmd.info "index"
       ~doc:"Build the paper's three-component on-disk suffix tree for a FASTA \
             database.")
    Term.(
      const run $ fasta_arg ~doc:"Input FASTA database." "db" $ alphabet_arg
      $ dir $ clustered $ external_build $ shards $ profile)

(* --- append / compact: the live log-structured index --- *)

let live_open ~alphabet fs =
  let t, r = Storage.Live_index.open_ ~alphabet fs in
  (match r.Storage.Live_index.truncated with
  | Storage.Segment_log.Sealed -> ()
  | state ->
    Printf.printf "# recovery: cut a %s journal tail, %d records replayed\n%!"
      (Storage.Segment_log.state_name state)
      r.Storage.Live_index.replayed);
  t

let live_summary t =
  Printf.sprintf "catalog v%d: %d sealed segments, %d journaled in the tail"
    (Storage.Live_index.catalog_version t)
    (List.length (Storage.Live_index.segments t))
    (Storage.Live_index.tail_sequences t)

let live_index_arg =
  Arg.(required & opt (some string) None & info [ "o"; "index" ] ~docv:"DIR"
         ~doc:"Live index directory.")

let append_cmd =
  let run fasta alphabet dir =
    let seqs = Bioseq.Fasta.read_file ~alphabet fasta in
    if seqs = [] then failwith "no sequences in the FASTA";
    let fs = Storage.Vfs.dir dir in
    let t =
      if Storage.Live_index.exists fs then live_open ~alphabet fs
      else Storage.Live_index.create ~alphabet fs
    in
    Fun.protect
      ~finally:(fun () -> Storage.Live_index.close t)
      (fun () ->
        Storage.Live_index.append t seqs;
        Printf.printf "appended %d sequences; index holds %d (%s)\n"
          (List.length seqs)
          (Storage.Live_index.num_sequences t)
          (live_summary t))
  in
  Cmd.v
    (Cmd.info "append"
       ~doc:"Append FASTA sequences to a live log-structured index, creating \
             it on first use. Crash-safe: the batch is journaled and synced \
             before it is acknowledged, so after a crash the index recovers \
             to a searchable prefix of what was appended.")
    Term.(
      const run
      $ fasta_arg ~doc:"FASTA file with the sequences to append." "db"
      $ alphabet_arg $ live_index_arg)

let compact_cmd =
  let run alphabet dir full =
    let fs = Storage.Vfs.dir dir in
    if not (Storage.Live_index.exists fs) then
      failwith (Printf.sprintf "%s holds no live index" dir);
    let t = live_open ~alphabet fs in
    Fun.protect
      ~finally:(fun () -> Storage.Live_index.close t)
      (fun () ->
        let tail = Storage.Live_index.tail_sequences t in
        Storage.Live_index.compact ~full t;
        Printf.printf "sealed %d tail sequences; %s\n" tail (live_summary t))
  in
  let full =
    Arg.(value & flag & info [ "full" ]
           ~doc:"Also fold the existing sealed segments in, leaving a single \
                 segment.")
  in
  Cmd.v
    (Cmd.info "compact"
       ~doc:"Seal a live index's journaled tail into an immutable segment \
             (the paper's section 3.4.1 external builder). A crash at any \
             point leaves the previous catalog version live; stale files are \
             garbage-collected on the next open.")
    Term.(const run $ alphabet_arg $ live_index_arg $ full)

(* --- search --- *)

let format_conv =
  let parse = function
    | "plain" -> Ok `Plain
    | "tabular" | "tab" | "m8" -> Ok `Tabular
    | "pairwise" -> Ok `Pairwise
    | other -> Error (`Msg (Printf.sprintf "unknown format %S (plain|tabular|pairwise)" other))
  in
  let print ppf f =
    Format.pp_print_string ppf
      (match f with `Plain -> "plain" | `Tabular -> "tabular" | `Pairwise -> "pairwise")
  in
  Arg.conv (parse, print)

let gap_of gap_penalty gap_open =
  match gap_open with
  | None -> Scoring.Gap.linear gap_penalty
  | Some open_cost -> Scoring.Gap.affine ~open_cost ~extend_cost:gap_penalty

(* Rebuild the shard sub-databases a sharded index was built over; the
   manifest, not a fresh plan, is the source of truth. *)
let pieces_of_manifest db entries =
  let total =
    Array.fold_left
      (fun acc (e : Storage.Shard_manifest.entry) -> acc + e.num_seqs)
      0 entries
  in
  if total <> Bioseq.Database.num_sequences db then
    failwith
      (Printf.sprintf
         "sharded index covers %d sequences but the FASTA has %d — wrong \
          database for this index?"
         total
         (Bioseq.Database.num_sequences db));
  Array.map
    (fun (e : Storage.Shard_manifest.entry) ->
      let seqs =
        List.init e.num_seqs (fun i -> Bioseq.Database.seq db (e.first_seq + i))
      in
      let piece =
        { Oasis.Shard.db = Bioseq.Database.make seqs; first_seq = e.first_seq }
      in
      if Bioseq.Database.total_symbols piece.Oasis.Shard.db <> e.symbols then
        failwith
          (Printf.sprintf
             "shard %d: manifest records %d symbols, FASTA slice has %d — \
              wrong database for this index?"
             e.first_seq e.symbols
             (Bioseq.Database.total_symbols piece.Oasis.Shard.db));
      piece)
    entries

let search_cmd =
  let run fasta alphabet index_dir query_text queries_path batch_size matrix
      gap_penalty gap_open min_score evalue top with_alignments evalue_order
      format buffer_blocks max_columns max_nodes time_limit shards stats
      trace_file seed_cutoff use_profile =
    (match (query_text, queries_path) with
    | None, None -> failwith "give --query or --queries"
    | Some _, Some _ -> failwith "give only one of --query and --queries"
    | _ -> ());
    if batch_size < 1 || batch_size > 512 then
      failwith "--batch-size must be in [1, 512]";
    (* A live (log-structured) index carries its own sequences, so
       --db is optional there; everywhere else it is the database. *)
    let live =
      match index_dir with
      | Some dirpath
        when Storage.Live_index.exists (Storage.Vfs.dir dirpath) ->
        Some (live_open ~alphabet (Storage.Vfs.dir dirpath))
      | _ -> None
    in
    let seqs =
      match (live, fasta) with
      | Some t, _ -> Storage.Live_index.sequences t
      | None, Some f -> Bioseq.Fasta.read_file ~alphabet f
      | None, None ->
        failwith
          "--db is required (only a live log-structured --index carries its \
           own sequences)"
    in
    let db = Bioseq.Database.make seqs in
    let gap = gap_of gap_penalty gap_open in
    let min_score =
      match (min_score, evalue) with
      | Some s, None -> s
      | None, Some e ->
        let qlen =
          match query_text with
          | Some qt -> String.length qt
          | None ->
            failwith
              "--evalue needs a single --query (its score cutoff depends on \
               the query length; batch mode takes --min-score)"
        in
        let freqs = Scoring.Background.of_database db in
        let params = Scoring.Karlin.estimate ~matrix ~freqs () in
        let s =
          Scoring.Karlin.score_for_evalue params ~m:qlen
            ~n:(Bioseq.Database.total_symbols db)
            ~evalue:e
        in
        Printf.printf "E=%g -> minScore %d (%s)\n%!" e s
          (Format.asprintf "%a" Scoring.Karlin.pp_params params);
        s
      | None, None -> 1
      | Some _, Some _ ->
        failwith "give at most one of --min-score and --evalue"
    in
    let budget =
      Oasis.Engine.budget ?max_columns ?max_expanded:max_nodes ?time_limit ()
    in
    let config = Oasis.Engine.config ~matrix ~gap ~min_score ~budget () in
    (* Cutoff seeding (--seed-cutoff, DESIGN.md §2k): one heuristic
       BLAST pass per query; each BLAST hit score is achieved by a real
       alignment, so the k-th best of them lower-bounds the true k-th
       best hit score and raising min_score to it is monotone-safe for
       a top-K (by score) consumer. Not sound under --evalue-order,
       where the top K by E-value can include lower-scoring hits. *)
    if seed_cutoff && evalue_order then
      failwith
        "--seed-cutoff tightens the score cutoff below the K-th best score, \
         which can drop hits the E-value order would have ranked inside the \
         top K; drop one of --seed-cutoff / --evalue-order";
    let blast_cfg =
      if not seed_cutoff then None
      else
        let freqs = Scoring.Background.of_database db in
        match Scoring.Karlin.estimate ~matrix ~freqs () with
        | params ->
          Some
            (if Bioseq.Alphabet.size alphabet <= 4 then
               Blast.Search.default_dna ~matrix ~gap ~params ()
             else Blast.Search.default_protein ~matrix ~gap ~params ())
        | exception Scoring.Karlin.Unsupported_matrix _ ->
          Printf.printf
            "# seed cutoff skipped: no Karlin parameters for this matrix\n";
          None
    in
    let seeded_config query =
      match blast_cfg with
      | None -> config
      | Some bcfg ->
        let s = Blast.Seed.min_score bcfg ~query ~db ~k:top ~floor:min_score in
        if s > min_score then begin
          Printf.printf
            "# seed cutoff: BLAST pass raises minScore %d -> %d (top %d)\n%!"
            min_score s top;
          Oasis.Engine.config ~matrix ~gap ~min_score:s ~budget ()
        end
        else config
    in
    (* The q-gram filter tier (--profile): built from the in-memory
       tree, or loaded from the qgram.prf sidecar an indexing run with
       --profile left next to each on-disk index. *)
    let mem_profile ~db tree =
      if use_profile then Some (Quasar.Profile.build ~db ~tree ()) else None
    in
    let disk_profile dir =
      if not use_profile then None
      else
        let path = Filename.concat dir profile_filename in
        if not (Storage.Blob.exists path) then begin
          Printf.printf
            "# no q-gram profile at %s (index with --profile to store one); \
             filter tier disarmed\n"
            path;
          None
        end
        else
          match Storage.Blob.load path with
          | Ok payload -> Some (Quasar.Profile.of_bytes payload)
          | Error msg -> failwith (Printf.sprintf "%s: %s" path msg)
    in
    (* When a budget stops the search early it does so cleanly: printed
       hits are exact, and the frontier bound says what could remain. *)
    let report_outcome = function
      | Oasis.Engine.Exhausted { remaining_bound } ->
        Printf.printf "# budget exhausted: unreported hits score <= %d\n"
          remaining_bound
      | Oasis.Engine.Searching | Oasis.Engine.Complete -> ()
    in
    let report ~query i hit evalue =
      match format with
      | `Tabular | `Pairwise ->
        let r =
          Report.Render.row ~matrix ~gap ~db ~query
            ~seq_index:hit.Oasis.Hit.seq_index ()
        in
        let r =
          { r with Report.Render.evalue; bit_score = None }
        in
        let fmt =
          match format with
          | `Tabular -> Report.Render.Tabular
          | _ -> Report.Render.Pairwise
        in
        print_string (Report.Render.to_string fmt [ r ])
      | `Plain ->
        let target = Bioseq.Database.seq db hit.Oasis.Hit.seq_index in
        Printf.printf "%4d. %-24s score %-5d%s (ends: query %d, target %d)\n" i
          (Bioseq.Sequence.id target) hit.Oasis.Hit.score
          (match evalue with
          | None -> ""
          | Some e -> Printf.sprintf " E=%-10.3g" e)
          hit.Oasis.Hit.query_stop hit.Oasis.Hit.target_stop;
        if with_alignments then
          let a = Align.Smith_waterman.align ~matrix ~gap ~query ~target in
          Format.printf "@[<v 6>      %a@]@." (Align.Alignment.pp ~query ~target) a
    in
    let stream ~query next =
      let rec go i =
        if i > top then ()
        else
          match next () with
          | None -> ()
          | Some (hit, evalue) ->
            report ~query i hit evalue;
            go (i + 1)
      in
      go 1
    in
    (* Observability: --stats registers every layer's metrics in one
       registry and prints them after the search; --trace streams
       structured events (JSONL, or Chrome trace_event for .json/.trace
       paths). Engine-level hooks attach on the single-engine paths;
       sharded searches record the merge (release latency, occupancy,
       frontier bounds) — per-shard engines run on worker domains where
       a shared sink would race. *)
    let registry = Obs.Registry.create () in
    let trace_sink =
      Option.map
        (fun path ->
          let oc = open_out path in
          (Obs.Trace.create ~format:(Obs.Trace.format_of_path path) oc, oc))
        trace_file
    in
    let sink = Option.map fst trace_sink in
    let observing = stats || sink <> None in
    let inst =
      if observing then Some (Oasis.Instrument.create ~registry ?trace:sink ())
      else None
    in
    let merge_obs () =
      if observing then
        Some (Oasis.Instrument.merge_obs ~registry ?trace:sink ())
      else None
    in
    let wall0 = ref 0. in
    let finish ?(sharded = false) counters =
      let wall = Unix.gettimeofday () -. !wall0 in
      (match sink with
      | Some s ->
        Oasis.Instrument.emit_counters s ~sharded counters;
        Obs.Trace.close s
      | None -> ());
      (match trace_sink with Some (_, oc) -> close_out oc | None -> ());
      if stats then begin
        Printf.printf "# --- search stats ---\n";
        Printf.printf "# wall %26.3f ms\n" (wall *. 1e3);
        (match inst with
        | Some i ->
          let timer = i.Oasis.Instrument.timer in
          let total = Obs.Timer.total timer in
          if total > 0. then begin
            Printf.printf "# phases:\n";
            List.iter
              (fun (name, s) ->
                Printf.printf "#   %-10s %16.3f ms  %5.1f%%\n" name (s *. 1e3)
                  (if total > 0. then 100. *. s /. total else 0.))
              (List.sort
                 (fun (_, a) (_, b) -> compare (b : float) a)
                 (Obs.Timer.phases timer));
            Printf.printf "#   %-10s %16.3f ms  (%.1f%% of wall)\n" "sum"
              (total *. 1e3)
              (if wall > 0. then 100. *. total /. wall else 0.)
          end
        | None -> ());
        let items = Obs.Registry.items registry in
        if items <> [] then begin
          Printf.printf "# metrics:\n";
          List.iter
            (fun (name, m) ->
              let body =
                match m with
                | Obs.Registry.Counter c ->
                  Format.asprintf "%a" Obs.Metric.pp_counter c
                | Obs.Registry.Gauge g ->
                  Format.asprintf "%a" Obs.Metric.pp_gauge g
                | Obs.Registry.Histogram h ->
                  Format.asprintf "%a" Obs.Metric.pp_histogram h
              in
              Printf.printf "#   %-28s %s\n" name body)
            items
        end;
        Printf.printf "# work: %d columns, %d expanded, %d enqueued, %d \
                       pruned, queue peak %d\n"
          counters.Oasis.Engine.columns counters.Oasis.Engine.nodes_expanded
          counters.Oasis.Engine.nodes_enqueued
          counters.Oasis.Engine.nodes_pruned counters.Oasis.Engine.max_queue
      end
    in
    (* With --evalue-order, wrap the engine in the length-adjusted
       E-value stream (§4.3). *)
    let with_order (type e) ~query
        (module D : Oasis.Engine.DRIVER with type t = e) (engine : e) =
      if not evalue_order then fun () ->
        Option.map (fun h -> (h, None)) (D.next engine)
      else begin
        let freqs = Scoring.Background.of_database db in
        let params = Scoring.Karlin.estimate ~matrix ~freqs () in
        let module Stream = Oasis.Evalue_stream.Make (D) in
        let stream =
          Stream.create ~driver:engine ~db ~params
            ~query_length:(Bioseq.Sequence.length query)
        in
        fun () -> Option.map (fun (h, e) -> (h, Some e)) (Stream.next stream)
      end
    in
    let run_single query =
      let config = seeded_config query in
      match (live, index_dir) with
      | Some t, _ ->
        (* Live log-structured index: search the pinned {segments ∪ tail}
           snapshot through the order-preserving merge. *)
      Fun.protect
        ~finally:(fun () -> Storage.Live_index.close t)
        (fun () ->
          let snap = Storage.Live_index.snapshot t in
          Fun.protect
            ~finally:(fun () -> Storage.Live_index.release t snap)
            (fun () ->
              match Oasis.Multi.parts_of_snapshot snap with
              | [||] -> Printf.printf "# empty index, no hits\n"
              | parts ->
                let profiles =
                  if not use_profile then None
                  else
                    Some
                      (Array.map
                         (function
                           | Oasis.Multi.Mem { tree; db = pdb; _ } ->
                             mem_profile ~db:pdb tree
                           | Oasis.Multi.Disk _ -> None)
                         parts)
                in
                let m = Oasis.Multi.create ?profiles ~parts ~query config in
                wall0 := Unix.gettimeofday ();
                stream ~query (with_order ~query (module Oasis.Multi) m);
                report_outcome (Oasis.Multi.outcome m);
                Printf.printf "# live index, %s\n" (live_summary t);
                finish ~sharded:true (Oasis.Multi.counters m)))
    | None, None when shards > 1 ->
      (* Sharded in-memory search: one tree + engine per shard on a
         domain pool, merged preserving the decreasing-score order.
         With --profile the plan/build is done here so each shard gets
         its own profile (and the merge gets per-shard gram caps). *)
      let t =
        if not use_profile then
          Oasis.Parallel.Mem.create_sharded ?obs:(merge_obs ()) ~shards ~db
            ~query config
        else begin
          let pieces = Oasis.Shard.plan ~shards db in
          let trees = Oasis.Shard.build_trees pieces in
          let sources =
            Array.mapi
              (fun i piece -> { Oasis.Parallel.Mem.source = trees.(i); piece })
              pieces
          in
          let profiles =
            Array.mapi
              (fun i (piece : Oasis.Shard.piece) ->
                mem_profile ~db:piece.db trees.(i))
              pieces
          in
          Oasis.Parallel.Mem.create ?obs:(merge_obs ()) ~profiles
            ~shards:sources ~query config
        end
      in
      wall0 := Unix.gettimeofday ();
      stream ~query (with_order ~query (module Oasis.Parallel.Mem) t);
      report_outcome (Oasis.Parallel.Mem.outcome t);
      finish ~sharded:true (Oasis.Parallel.Mem.counters t)
    | None, None ->
      (* In-memory index. *)
      let tree = Suffix_tree.Ukkonen.build db in
      let filter = mem_profile ~db tree in
      let engine = Oasis.Engine.Mem.create ?filter ~source:tree ~db ~query config in
      Oasis.Engine.Mem.set_instrument engine inst;
      wall0 := Unix.gettimeofday ();
      stream ~query (with_order ~query (module Oasis.Engine.Mem) engine);
      report_outcome (Oasis.Engine.Mem.outcome engine);
      finish (Oasis.Engine.Mem.counters engine)
    | None, Some dir when Storage.Shard_manifest.exists ~dir ->
      (* Sharded on-disk index: the manifest names the partition; each
         shard opens its own components and buffer pool (the pool is
         single-threaded by design, so shards must not share one). *)
      let entries = Storage.Shard_manifest.load ~dir in
      let pieces = pieces_of_manifest db entries in
      let k = Array.length pieces in
      let per_shard_blocks = max 16 (buffer_blocks / k) in
      let devices = ref [] in
      Fun.protect
        ~finally:(fun () -> List.iter Storage.Device.close !devices)
        (fun () ->
          let sources =
            Array.mapi
              (fun i piece ->
                let sym_p, int_p, leaf_p =
                  index_files (Storage.Shard_manifest.shard_dir dir i)
                in
                let symbols = Storage.Device.open_file sym_p
                and internal = Storage.Device.open_file int_p
                and leaves = Storage.Device.open_file leaf_p in
                devices := symbols :: internal :: leaves :: !devices;
                let pool =
                  Storage.Buffer_pool.create ~block_size:2048
                    ~capacity:per_shard_blocks
                in
                let source =
                  Storage.Disk_tree.open_ ~alphabet ~pool ~symbols ~internal
                    ~leaves ()
                in
                { Oasis.Parallel.Disk.source; piece })
              pieces
          in
          let profiles =
            if not use_profile then None
            else
              Some
                (Array.init k (fun i ->
                     disk_profile (Storage.Shard_manifest.shard_dir dir i)))
          in
          let t =
            Oasis.Parallel.Disk.create ?obs:(merge_obs ()) ?profiles
              ~shards:sources ~query config
          in
          wall0 := Unix.gettimeofday ();
          stream ~query (with_order ~query (module Oasis.Parallel.Disk) t);
          report_outcome (Oasis.Parallel.Disk.outcome t);
          Printf.printf "# %d shards, %d buffer blocks each\n" k
            per_shard_blocks;
          finish ~sharded:true (Oasis.Parallel.Disk.counters t))
    | None, Some dir ->
      let sym_p, int_p, leaf_p = index_files dir in
      let symbols = Storage.Device.open_file sym_p
      and internal = Storage.Device.open_file int_p
      and leaves = Storage.Device.open_file leaf_p in
      let pool = Storage.Buffer_pool.create ~block_size:2048 ~capacity:buffer_blocks in
      let dt = Storage.Disk_tree.open_ ~alphabet ~pool ~symbols ~internal ~leaves () in
      let filter = disk_profile dir in
      let engine = Oasis.Engine.Disk.create ?filter ~source:dt ~db ~query config in
      Oasis.Engine.Disk.set_instrument engine inst;
      if observing then
        Storage.Buffer_pool.set_obs pool
          (Some (Storage.Buffer_pool.obs ~registry ?trace:sink ()));
      wall0 := Unix.gettimeofday ();
      stream ~query (with_order ~query (module Oasis.Engine.Disk) engine);
      report_outcome (Oasis.Engine.Disk.outcome engine);
      finish (Oasis.Engine.Disk.counters engine);
      let c = Oasis.Engine.Disk.counters engine in
      Printf.printf
        "# engine pool I/O: %d hits / %d misses (%d table probes, %d memo \
         hits)\n"
        c.Oasis.Engine.io_hits c.Oasis.Engine.io_misses
        (Storage.Buffer_pool.probes pool)
        (Storage.Buffer_pool.memo_hits pool);
      List.iter
        (fun (name, comp) ->
          let s = Storage.Disk_tree.component_stats dt comp in
          Printf.printf "# %s: %d hits / %d misses (ratio %.3f)\n" name
            s.Storage.Buffer_pool.hits s.Storage.Buffer_pool.misses
            (Storage.Buffer_pool.hit_ratio s))
        [
          ("symbols", Storage.Disk_tree.Symbols);
          ("internal", Storage.Disk_tree.Internal_nodes);
          ("leaves", Storage.Disk_tree.Leaves);
        ];
      List.iter Storage.Device.close [ symbols; internal; leaves ]
    in
    (* Multi-query batch mode: one fused kernel per (chunk, tree), so a
       tree node is expanded — its page pinned and decoded — once for
       every query of a chunk instead of once per query. Sharded and
       multi-part sources run one fused search per part and merge each
       query's complete streams in the sharded coordinator's release
       order, so output order matches the single-query paths. *)
    let run_batch queries =
      if evalue_order then
        failwith "--evalue-order is not supported with --queries";
      let queries = Array.of_list queries in
      let nq = Array.length queries in
      (* One shared config for every fused kernel: the seed must be
         safe for all queries at once, so take the min of the
         per-query BLAST k-th-best scores (each is ≤ its own query's
         true k-th best, hence so is the min). *)
      let config =
        match blast_cfg with
        | None -> config
        | Some bcfg ->
          let s =
            Array.fold_left
              (fun acc query ->
                min acc
                  (Blast.Seed.min_score bcfg ~query ~db ~k:top
                     ~floor:min_score))
              max_int queries
          in
          if s > min_score then begin
            Printf.printf
              "# seed cutoff: BLAST pass raises minScore %d -> %d (min over \
               %d queries, top %d)\n%!"
              min_score s nq top;
            Oasis.Engine.config ~matrix ~gap ~min_score:s ~budget ()
          end
          else config
      in
      let all_hits = Array.make nq [] in
      let all_outcomes = Array.make nq Oasis.Engine.Complete in
      let phys = ref Oasis.Counters.zero in
      let virt_cols = ref 0 in
      (* One fused kernel over [chunk]; heterogeneous tree sources hide
         behind this first-class module. *)
      let fused (type s)
          (module K : Oasis.Batch_kernel.S with type source = s)
          ?filter ~(source : s) ~db:part_db ~globalize chunk =
        let k = K.create ?filter ~source ~db:part_db ~queries:chunk config in
        K.set_instrument k inst;
        K.run k;
        let n = Array.length chunk in
        let h = Array.init n (fun q -> List.map globalize (K.hits k q)) in
        let o = Array.init n (fun q -> K.outcome k q) in
        phys := Oasis.Counters.merge !phys (K.shared_counters k);
        for q = 0 to n - 1 do
          virt_cols := !virt_cols + (K.counters k q).Oasis.Engine.columns
        done;
        (h, o)
      in
      let no_globalize h = h in
      let shift first_seq h =
        { h with Oasis.Hit.seq_index = h.Oasis.Hit.seq_index + first_seq }
      in
      (* Drive every chunk through every part and merge per query. *)
      let run_parts part_runners =
        let nparts = List.length part_runners in
        let base = ref 0 in
        while !base < nq do
          let len = min batch_size (nq - !base) in
          let chunk = Array.sub queries !base len in
          let per_part = List.map (fun r -> r chunk) part_runners in
          for q = 0 to len - 1 do
            let streams =
              Array.of_list (List.map (fun (h, _) -> h.(q)) per_part)
            in
            let outs =
              Array.of_list (List.map (fun (_, o) -> o.(q)) per_part)
            in
            all_hits.(!base + q) <-
              (if nparts = 1 then streams.(0)
               else Oasis.Batch.merge_streams streams);
            all_outcomes.(!base + q) <- Oasis.Batch.merge_outcomes outs
          done;
          base := !base + len
        done
      in
      let print_results ~sharded =
        Array.iteri
          (fun qi query ->
            let hits = all_hits.(qi) in
            Printf.printf "# query %s: %d hit(s)%s\n"
              (Bioseq.Sequence.id query) (List.length hits)
              (match all_outcomes.(qi) with
              | Oasis.Engine.Exhausted { remaining_bound } ->
                Printf.sprintf "; budget exhausted, unreported <= %d"
                  remaining_bound
              | _ -> "");
            List.iteri
              (fun i hit -> if i < top then report ~query (i + 1) hit None)
              hits)
          queries;
        let p = !phys in
        Printf.printf
          "# fused batch: %d queries in chunks of %d; %d virtual columns \
           served by %d physical DP sweeps (%.2fx)\n"
          nq batch_size !virt_cols p.Oasis.Engine.columns
          (if p.Oasis.Engine.columns > 0 then
             float_of_int !virt_cols /. float_of_int p.Oasis.Engine.columns
           else 1.);
        finish ~sharded p
      in
      match (live, index_dir) with
      | Some t, _ ->
        Fun.protect
          ~finally:(fun () -> Storage.Live_index.close t)
          (fun () ->
            let snap = Storage.Live_index.snapshot t in
            Fun.protect
              ~finally:(fun () -> Storage.Live_index.release t snap)
              (fun () ->
                match Oasis.Multi.parts_of_snapshot snap with
                | [||] -> Printf.printf "# empty index, no hits\n"
                | parts ->
                  let runners =
                    Array.to_list parts
                    |> List.map (function
                      | Oasis.Multi.Mem { tree; db = pdb; first_seq } ->
                        let filter = mem_profile ~db:pdb tree in
                        fun chunk ->
                          fused
                            (module Oasis.Batch_kernel.Mem)
                            ?filter ~source:tree ~db:pdb
                            ~globalize:(shift first_seq) chunk
                      | Oasis.Multi.Disk { tree; db = pdb; first_seq } ->
                        fun chunk ->
                          fused
                            (module Oasis.Batch_kernel.Disk)
                            ~source:tree ~db:pdb ~globalize:(shift first_seq)
                            chunk)
                  in
                  wall0 := Unix.gettimeofday ();
                  run_parts runners;
                  Printf.printf "# live index, %s\n" (live_summary t);
                  print_results ~sharded:true))
      | None, None when shards > 1 ->
        let pieces = Oasis.Shard.plan ~shards db in
        let trees = Oasis.Shard.build_trees pieces in
        let runners =
          Array.to_list
            (Array.mapi
               (fun i (piece : Oasis.Shard.piece) ->
                 let tree = trees.(i) in
                 let filter = mem_profile ~db:piece.db tree in
                 fun chunk ->
                   fused
                     (module Oasis.Batch_kernel.Mem)
                     ?filter ~source:tree ~db:piece.db
                     ~globalize:(Oasis.Shard.globalize piece) chunk)
               pieces)
        in
        wall0 := Unix.gettimeofday ();
        run_parts runners;
        Printf.printf "# %d shards (fused per shard)\n" (Array.length pieces);
        print_results ~sharded:true
      | None, None ->
        let tree = Suffix_tree.Ukkonen.build db in
        let filter = mem_profile ~db tree in
        wall0 := Unix.gettimeofday ();
        run_parts
          [
            (fun chunk ->
              fused
                (module Oasis.Batch_kernel.Mem)
                ?filter ~source:tree ~db ~globalize:no_globalize chunk);
          ];
        print_results ~sharded:false
      | None, Some dir when Storage.Shard_manifest.exists ~dir ->
        let entries = Storage.Shard_manifest.load ~dir in
        let pieces = pieces_of_manifest db entries in
        let nshards = Array.length pieces in
        let per_shard_blocks = max 16 (buffer_blocks / nshards) in
        let devices = ref [] in
        Fun.protect
          ~finally:(fun () -> List.iter Storage.Device.close !devices)
          (fun () ->
            let runners =
              Array.to_list
                (Array.mapi
                   (fun i (piece : Oasis.Shard.piece) ->
                     let sym_p, int_p, leaf_p =
                       index_files (Storage.Shard_manifest.shard_dir dir i)
                     in
                     let symbols = Storage.Device.open_file sym_p
                     and internal = Storage.Device.open_file int_p
                     and leaves = Storage.Device.open_file leaf_p in
                     devices := symbols :: internal :: leaves :: !devices;
                     let pool =
                       Storage.Buffer_pool.create ~block_size:2048
                         ~capacity:per_shard_blocks
                     in
                     let source =
                       Storage.Disk_tree.open_ ~alphabet ~pool ~symbols
                         ~internal ~leaves ()
                     in
                     let filter =
                       disk_profile (Storage.Shard_manifest.shard_dir dir i)
                     in
                     fun chunk ->
                       fused
                         (module Oasis.Batch_kernel.Disk)
                         ?filter ~source ~db:piece.db
                         ~globalize:(Oasis.Shard.globalize piece) chunk)
                   pieces)
            in
            wall0 := Unix.gettimeofday ();
            run_parts runners;
            Printf.printf "# %d shards, %d buffer blocks each\n" nshards
              per_shard_blocks;
            print_results ~sharded:true)
      | None, Some dir ->
        let sym_p, int_p, leaf_p = index_files dir in
        let symbols = Storage.Device.open_file sym_p
        and internal = Storage.Device.open_file int_p
        and leaves = Storage.Device.open_file leaf_p in
        let pool =
          Storage.Buffer_pool.create ~block_size:2048 ~capacity:buffer_blocks
        in
        let dt =
          Storage.Disk_tree.open_ ~alphabet ~pool ~symbols ~internal ~leaves ()
        in
        if observing then
          Storage.Buffer_pool.set_obs pool
            (Some (Storage.Buffer_pool.obs ~registry ?trace:sink ()));
        let filter = disk_profile dir in
        wall0 := Unix.gettimeofday ();
        run_parts
          [
            (fun chunk ->
              fused
                (module Oasis.Batch_kernel.Disk)
                ?filter ~source:dt ~db ~globalize:no_globalize chunk);
          ];
        print_results ~sharded:false;
        let p = !phys in
        Printf.printf "# engine pool I/O: %d hits / %d misses\n"
          p.Oasis.Engine.io_hits p.Oasis.Engine.io_misses;
        List.iter Storage.Device.close [ symbols; internal; leaves ]
    in
    match queries_path with
    | None ->
      run_single
        (Bioseq.Sequence.make ~alphabet ~id:"query" (Option.get query_text))
    | Some qp ->
      let queries = Bioseq.Fasta.read_file ~alphabet qp in
      if queries = [] then failwith "no queries in the query FASTA";
      run_batch queries
  in
  let index_dir =
    Arg.(value & opt (some dir) None & info [ "index" ] ~docv:"DIR"
           ~doc:"On-disk index directory: either one built with \
                 $(b,oasis index), or a live log-structured one grown with \
                 $(b,oasis append) (detected automatically; --db is then \
                 unnecessary). Searches in memory when omitted.")
  in
  let query =
    Arg.(value & opt (some string) None & info [ "q"; "query" ] ~docv:"SEQ"
           ~doc:"Query sequence text (single-query mode; see --queries for \
                 batches).")
  in
  let queries_arg =
    Arg.(value & opt (some file) None & info [ "queries" ] ~docv:"FASTA"
           ~doc:"Multi-query FASTA: search every record through one fused \
                 batch kernel — each tree node is expanded once per chunk \
                 of queries instead of once per query. Per-query output is \
                 identical to running $(b,--query) on each record alone. \
                 Mutually exclusive with --query.")
  in
  let batch_size_arg =
    Arg.(value & opt int 16 & info [ "batch-size" ] ~docv:"K"
           ~doc:"Queries fused per kernel chunk with --queries (1-512).")
  in
  let matrix =
    Arg.(value & opt matrix_conv Scoring.Matrices.pam30 & info [ "matrix" ]
           ~docv:"NAME" ~doc:"Substitution matrix.")
  in
  let gap =
    Arg.(value & opt int 10 & info [ "gap" ] ~docv:"G"
           ~doc:"Gap penalty per symbol (the extension cost when \
                 --gap-open is given).")
  in
  let gap_open =
    Arg.(value & opt (some int) None & info [ "gap-open" ] ~docv:"GO"
           ~doc:"Affine gap opening cost; switches to the affine (Gotoh) \
                 model.")
  in
  let min_score =
    Arg.(value & opt (some int) None & info [ "min-score" ] ~docv:"S"
           ~doc:"Minimum alignment score to report.")
  in
  let evalue =
    Arg.(value & opt (some float) None & info [ "evalue" ] ~docv:"E"
           ~doc:"E-value cutoff (converted to a score via Karlin-Altschul \
                 statistics, Equation 3 of the paper).")
  in
  let top =
    Arg.(value & opt int 25 & info [ "top" ] ~docv:"K"
           ~doc:"Stop after K results (they stream out best-first).")
  in
  let with_alignments =
    Arg.(value & flag & info [ "align" ] ~doc:"Print full alignments.")
  in
  let evalue_order =
    Arg.(value & flag & info [ "evalue-order" ]
           ~doc:"Order results by length-adjusted E-value instead of raw \
                 score (stays online).")
  in
  let format =
    Arg.(value & opt format_conv `Plain & info [ "format" ] ~docv:"FMT"
           ~doc:"Output format: plain, tabular (BLAST outfmt 6) or pairwise.")
  in
  let buffer_blocks =
    Arg.(value & opt int 4096 & info [ "buffer-blocks" ] ~docv:"N"
           ~doc:"Buffer pool capacity in 2K blocks (disk index only).")
  in
  let max_columns =
    Arg.(value & opt (some int) None & info [ "max-columns" ] ~docv:"N"
           ~doc:"Search budget: stop after N dynamic-programming columns. \
                 Hits printed before the stop are exact; a final comment \
                 line bounds what was left unreported.")
  in
  let max_nodes =
    Arg.(value & opt (some int) None & info [ "max-nodes" ] ~docv:"N"
           ~doc:"Search budget: stop after N node expansions.")
  in
  let time_limit =
    Arg.(value & opt (some float) None & info [ "time-limit" ] ~docv:"SECONDS"
           ~doc:"Search budget: stop after this much wall-clock time.")
  in
  let shards =
    Arg.(value & opt int 1 & info [ "shards" ] ~docv:"K"
           ~doc:"Shard the in-memory search across K worker domains \
                 (partitioned at sequence boundaries; results keep the \
                 decreasing-score order). With --index, the shard count \
                 comes from the index's manifest and this flag is ignored.")
  in
  let stats =
    Arg.(value & flag & info [ "stats" ]
           ~doc:"After the search, print a per-phase time table (queue / \
                 expand / dp / bound / emit), work histograms \
                 (expansion depth, arc columns, buffer-pool probe \
                 lengths) and counters for every instrumented layer.")
  in
  let trace =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"Stream structured search events (node expansions, hit \
                 emissions, queue high-water marks, buffer-pool misses, \
                 shard frontier updates) to FILE: Chrome trace_event \
                 JSON for .json/.trace paths (open in chrome://tracing \
                 or Perfetto), JSONL otherwise. Validate with \
                 scripts/trace_check.py.")
  in
  let seed_cutoff_arg =
    Arg.(value & flag & info [ "seed-cutoff" ]
           ~doc:"Seed the exact search's prune cutoff with a fast BLAST \
                 first pass: the K-th best heuristic hit score (K from \
                 --top) lower-bounds the true K-th best, so the exact \
                 engine can prune against it from its first expansion \
                 without changing the reported top K. Skipped with a note \
                 when Karlin statistics are unavailable for the matrix; \
                 incompatible with --evalue-order.")
  in
  let profile_arg =
    Arg.(value & flag & info [ "profile" ]
           ~doc:"Arm the exactness-preserving q-gram filter tier \
                 (DESIGN.md section 2k): subtrees the q-gram lemma proves \
                 cannot reach the score cutoff are settled without running \
                 their DP columns; hit streams and work counters are \
                 bit-identical either way. In-memory searches build the \
                 profile on the fly; --index searches load the qgram.prf \
                 sidecar stored by $(b,oasis index --profile) (disarmed \
                 with a note when absent).")
  in
  Cmd.v
    (Cmd.info "search"
       ~doc:"Accurate online local-alignment search (the OASIS algorithm).")
    Term.(
      const run
      $ opt_fasta_arg
          ~doc:"FASTA database (not needed with a live --index, which \
                carries its own sequences)."
          "db"
      $ alphabet_arg
      $ index_dir $ query $ queries_arg $ batch_size_arg $ matrix $ gap
      $ gap_open $ min_score $ evalue $ top $ with_alignments $ evalue_order
      $ format $ buffer_blocks $ max_columns $ max_nodes $ time_limit $ shards
      $ stats $ trace $ seed_cutoff_arg $ profile_arg)

(* --- batch --- *)

let batch_cmd =
  let run fasta alphabet queries_path batch_size matrix gap_penalty min_score
      domains format =
    let seqs = Bioseq.Fasta.read_file ~alphabet fasta in
    let db = Bioseq.Database.make seqs in
    let queries = Bioseq.Fasta.read_file ~alphabet queries_path in
    if queries = [] then failwith "no queries in the query FASTA";
    Printf.printf "# %d queries, %d database sequences, %d domain(s)\n%!"
      (List.length queries)
      (Bioseq.Database.num_sequences db)
      domains;
    let tree = Suffix_tree.Ukkonen.build db in
    let gap = Scoring.Gap.linear gap_penalty in
    let cfg = Oasis.Engine.config ~matrix ~gap ~min_score () in
    let t0 = Unix.gettimeofday () in
    let results = Oasis.Batch.run ~domains ~batch_size ~tree ~db ~queries cfg in
    let elapsed = Unix.gettimeofday () -. t0 in
    List.iter
      (fun r ->
        let query = List.nth queries r.Oasis.Batch.query_index in
        match format with
        | `Tabular ->
          let rows =
            List.map
              (fun h ->
                Report.Render.row ~matrix ~gap ~db ~query
                  ~seq_index:h.Oasis.Hit.seq_index ())
              r.Oasis.Batch.hits
          in
          print_string (Report.Render.to_string Report.Render.Tabular rows)
        | _ ->
          Printf.printf "%s: %d hits\n" (Bioseq.Sequence.id query)
            (List.length r.Oasis.Batch.hits))
      results;
    Printf.printf "# batch completed in %.2fs\n" elapsed
  in
  let queries_path =
    Arg.(required & opt (some file) None & info [ "queries" ] ~docv:"FASTA"
           ~doc:"FASTA file of query sequences.")
  in
  let batch_size =
    Arg.(value & opt int 16 & info [ "batch-size" ] ~docv:"K"
           ~doc:"Queries fused per kernel chunk (1-512; 1 runs each query \
                 through its own engine).")
  in
  let matrix =
    Arg.(value & opt matrix_conv Scoring.Matrices.pam30 & info [ "matrix" ]
           ~docv:"NAME" ~doc:"Substitution matrix.")
  in
  let gap =
    Arg.(value & opt int 10 & info [ "gap" ] ~docv:"G"
           ~doc:"Fixed (linear) gap penalty per symbol.")
  in
  let min_score =
    Arg.(value & opt int 20 & info [ "min-score" ] ~docv:"S"
           ~doc:"Minimum alignment score to report.")
  in
  let domains =
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"D"
           ~doc:"Worker domains (parallel when > 1).")
  in
  let format =
    Arg.(value & opt format_conv `Plain & info [ "format" ] ~docv:"FMT"
           ~doc:"Output format: plain or tabular.")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:"Search a whole FASTA file of queries, optionally across several \
             domains.")
    Term.(
      const run $ fasta_arg ~doc:"FASTA database." "db" $ alphabet_arg
      $ queries_path $ batch_size $ matrix $ gap $ min_score $ domains
      $ format)

(* --- compare --- *)

let compare_cmd =
  let run fasta alphabet query_text matrix gap_penalty min_score =
    let seqs = Bioseq.Fasta.read_file ~alphabet fasta in
    let db = Bioseq.Database.make seqs in
    let query = Bioseq.Sequence.make ~alphabet ~id:"query" query_text in
    let gap = Scoring.Gap.linear gap_penalty in
    let time f =
      let t0 = Unix.gettimeofday () in
      let r = f () in
      (r, Unix.gettimeofday () -. t0)
    in
    let freqs = Scoring.Background.of_database db in
    let params = Scoring.Karlin.estimate ~matrix ~freqs () in
    let tree, t_tree = time (fun () -> Suffix_tree.Ukkonen.build db) in
    let sa, t_sa = time (fun () -> Suffix_tree.Suffix_array.build db) in
    Printf.printf "index build: suffix tree %.2fs, suffix array %.2fs\n\n"
      t_tree t_sa;
    let cfg = Oasis.Engine.config ~matrix ~gap ~min_score () in
    let oasis_hits, t_oasis =
      time (fun () ->
          Oasis.Engine.Mem.run
            (Oasis.Engine.Mem.create ~source:tree ~db ~query cfg))
    in
    let oasis_set =
      List.sort compare
        (List.map (fun h -> (h.Oasis.Hit.seq_index, h.Oasis.Hit.score)) oasis_hits)
    in
    let (sw_hits, _), t_sw =
      time (fun () ->
          Align.Smith_waterman.search ~matrix ~gap ~query ~db ~min_score)
    in
    let sw_set =
      List.sort compare
        (List.map (fun h -> Align.Smith_waterman.(h.seq_index, h.score)) sw_hits)
    in
    let (blast_hits, _), t_blast =
      time (fun () ->
          let bcfg = Blast.Search.default_protein ~matrix ~gap ~params () in
          Blast.Search.search bcfg ~query ~db)
    in
    let (quasar_hits, qstats), t_quasar =
      time (fun () ->
          let qcfg =
            Quasar.Filter.config ~matrix ~gap ~min_score
              ~query_length:(Bioseq.Sequence.length query) ()
          in
          Quasar.Filter.search qcfg ~sa ~query)
    in
    Printf.printf "%-16s %10s %8s %s\n" "method" "time(ms)" "hits" "notes";
    Printf.printf "%-16s %10.1f %8d exact, online\n" "oasis"
      (1000. *. t_oasis) (List.length oasis_hits);
    Printf.printf "%-16s %10.1f %8d exact, exhaustive%s\n" "smith-waterman"
      (1000. *. t_sw) (List.length sw_hits)
      (if sw_set = oasis_set then " (= oasis)" else " (DISAGREES with oasis!)");
    Printf.printf "%-16s %10.1f %8d heuristic (may miss)\n" "blast"
      (1000. *. t_blast) (List.length blast_hits);
    Printf.printf "%-16s %10.1f %8d heuristic filter (verified %.1f%% of db)\n"
      "quasar" (1000. *. t_quasar) (List.length quasar_hits)
      (100.
      *. float_of_int qstats.Quasar.Filter.verified_symbols
      /. float_of_int (Bioseq.Database.total_symbols db))
  in
  let query =
    Arg.(required & opt (some string) None & info [ "q"; "query" ] ~docv:"SEQ"
           ~doc:"Query sequence text.")
  in
  let matrix =
    Arg.(value & opt matrix_conv Scoring.Matrices.pam30 & info [ "matrix" ]
           ~docv:"NAME" ~doc:"Substitution matrix.")
  in
  let gap =
    Arg.(value & opt int 10 & info [ "gap" ] ~docv:"G"
           ~doc:"Fixed (linear) gap penalty per symbol.")
  in
  let min_score =
    Arg.(value & opt int 20 & info [ "min-score" ] ~docv:"S"
           ~doc:"Minimum alignment score to report.")
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Run OASIS, Smith-Waterman, BLAST and the QUASAR filter on one \
             query and compare answers and cost.")
    Term.(
      const run $ fasta_arg ~doc:"FASTA database." "db" $ alphabet_arg $ query
      $ matrix $ gap $ min_score)

(* --- verify-index --- *)

let level_conv =
  let parse = function
    | "off" -> Ok `Off
    | "footer" -> Ok `Footer
    | "full" -> Ok `Full
    | other ->
      Error (`Msg (Printf.sprintf "unknown level %S (off|footer|full)" other))
  in
  let print ppf l =
    Format.pp_print_string ppf
      (match l with `Off -> "off" | `Footer -> "footer" | `Full -> "full")
  in
  Arg.conv (parse, print)

(* Health table for a live log-structured index: one row per sealed
   segment plus the journal. Exit is non-zero only for non-recoverable
   states — a torn or corrupt journal TAIL is a normal post-crash
   condition that the next open truncates. *)
let verify_live_index ~alphabet ~level fs =
  let verify =
    match level with
    | `Off -> Storage.Disk_tree.Off
    | `Footer | `Full -> Storage.Disk_tree.Footer
  in
  match Storage.Live_index.inspect ~verify ~alphabet fs with
  | Error msg ->
    Printf.eprintf "FAIL: %s\n" msg;
    exit 1
  | Ok h ->
    Printf.printf "live index, catalog v%d, %d sequences\n"
      h.Storage.Live_index.health_version
      h.Storage.Live_index.health_sequences;
    Printf.printf "  %-18s %-10s %10s  %s\n" "file" "state" "sequences"
      "detail";
    List.iter
      (fun (s : Storage.Live_index.segment_health) ->
        Printf.printf "  %-18s %-10s %10d  %s\n"
          s.segment.Storage.Catalog.name
          (if s.segment_ok then "sealed" else "CORRUPT")
          s.segment.Storage.Catalog.num_seqs s.segment_detail)
      h.Storage.Live_index.health_segments;
    let j = h.Storage.Live_index.health_journal in
    let state, detail =
      if not j.journal_readable then
        ("UNREADABLE", "damaged header; not recoverable")
      else
        match j.journal_state with
        | Storage.Segment_log.Sealed -> ("clean", "every record intact")
        | Storage.Segment_log.Torn ->
          ("torn", "incomplete tail record; the next open truncates it")
        | Storage.Segment_log.Corrupted ->
          ("corrupt", "damaged tail record; the next open truncates it")
    in
    Printf.printf "  %-18s %-10s %10d  %s\n" j.journal_file state
      j.journal_records detail;
    if h.Storage.Live_index.recoverable then
      Printf.printf "OK: recoverable (opening replays the journal)\n"
    else begin
      Printf.eprintf "FAIL: not recoverable\n";
      exit 1
    end

let verify_index_cmd =
  let run fasta alphabet dir level =
    let fs = Storage.Vfs.dir dir in
    if Storage.Live_index.exists fs then verify_live_index ~alphabet ~level fs
    else begin
    let fasta =
      match fasta with
      | Some f -> f
      | None ->
        failwith
          "--db is required for a static index (only a live log-structured \
           index carries its own sequences)"
    in
    let seqs = Bioseq.Fasta.read_file ~alphabet fasta in
    let db = Bioseq.Database.make seqs in
    let sym_p, int_p, leaf_p = index_files dir in
    let symbols = Storage.Device.open_file sym_p
    and internal = Storage.Device.open_file int_p
    and leaves = Storage.Device.open_file leaf_p in
    Fun.protect
      ~finally:(fun () ->
        List.iter Storage.Device.close [ symbols; internal; leaves ])
      (fun () ->
        (* The symbols payload (footer excluded) must be exactly the
           database concatenation. *)
        let expected =
          Bytes.sub (Bioseq.Database.data db) 0
            (Bioseq.Database.data_length db)
        in
        let sym_payload =
          match Storage.Footer.read symbols with
          | Some f -> f.Storage.Footer.payload_length
          | None -> Storage.Device.length symbols
        in
        if sym_payload <> Bytes.length expected then begin
          Printf.eprintf
            "FAIL: symbols component holds %d bytes, database has %d\n"
            sym_payload (Bytes.length expected);
          exit 1
        end;
        let buf = Bytes.create (Bytes.length expected) in
        Storage.Device.pread symbols ~off:0 ~buf;
        if not (Bytes.equal buf expected) then begin
          Printf.eprintf "FAIL: symbols component differs from the FASTA\n";
          exit 1
        end;
        let pool = Storage.Buffer_pool.create ~block_size:2048 ~capacity:4096 in
        (* Open at footer strength when any checking is on; the Full
           structural walk runs below so every issue gets printed, not
           just the first. *)
        let verify =
          match level with
          | `Off -> Storage.Disk_tree.Off
          | `Footer | `Full -> Storage.Disk_tree.Footer
        in
        let dt =
          Storage.Disk_tree.open_ ~verify ~alphabet ~pool ~symbols ~internal
            ~leaves ()
        in
        (if level = `Full then
           match Storage.Disk_tree.check dt with
           | [] -> ()
           | issues ->
             List.iter
               (fun i ->
                 Printf.eprintf "FAIL: %s+%d: %s\n"
                   (Storage.Disk_tree.component_name
                      i.Storage.Disk_tree.component)
                   i.Storage.Disk_tree.offset i.Storage.Disk_tree.message)
               issues;
             exit 1);
        match Storage.Disk_tree.validate dt with
        | Ok () ->
          let r = Storage.Disk_tree.size_report dt in
          Printf.printf
            "OK: %s layout, %d internal entries, %d suffix positions, %.2f \
             bytes/symbol\n"
            (match Storage.Disk_tree.layout dt with
            | Storage.Disk_tree.Position_indexed -> "position-indexed"
            | Storage.Disk_tree.Clustered -> "clustered")
            (Storage.Disk_tree.internal_count dt)
            (Bioseq.Database.data_length db)
            r.Storage.Disk_tree.bytes_per_symbol
        | Error msg ->
          Printf.eprintf "FAIL: %s\n" msg;
          exit 1)
    end
  in
  let dir =
    Arg.(required & opt (some dir) None & info [ "index" ] ~docv:"DIR"
           ~doc:"Index directory to verify.")
  in
  let level =
    Arg.(value & opt level_conv `Full & info [ "level" ] ~docv:"LEVEL"
           ~doc:"Verification strength: off (header magics only), footer \
                 (per-component length + CRC-32), or full (footer plus the \
                 defensive structural walk and the semantic validator).")
  in
  Cmd.v
    (Cmd.info "verify-index"
       ~doc:"Check an on-disk index's integrity. A static index is checked \
             against its FASTA database (footers, CRCs, structure); a live \
             log-structured index prints a per-segment and journal health \
             table, failing only for non-recoverable states.")
    Term.(
      const run
      $ opt_fasta_arg
          ~doc:"FASTA database (static indexes only; a live index carries \
                its own sequences)."
          "db"
      $ alphabet_arg $ dir $ level)

(* --- stats --- *)

let stats_cmd =
  let run fasta alphabet =
    let seqs = Bioseq.Fasta.read_file ~alphabet fasta in
    let db = Bioseq.Database.make seqs in
    Printf.printf "sequences:       %d\n" (Bioseq.Database.num_sequences db);
    Printf.printf "symbols:         %d\n" (Bioseq.Database.total_symbols db);
    let lens =
      List.init (Bioseq.Database.num_sequences db) (fun i ->
          Bioseq.Sequence.length (Bioseq.Database.seq db i))
    in
    let sorted = List.sort compare lens in
    let n = List.length sorted in
    Printf.printf "lengths:         min %d / median %d / max %d\n"
      (List.nth sorted 0)
      (List.nth sorted (n / 2))
      (List.nth sorted (n - 1));
    let tree = Suffix_tree.Ukkonen.build db in
    let s = Suffix_tree.Tree.stats tree in
    Printf.printf "suffix tree:     %d internal nodes, %d leaves, depth %d\n"
      s.Suffix_tree.Tree.internal_nodes s.Suffix_tree.Tree.leaves
      s.Suffix_tree.Tree.max_depth;
    let dt, _ = Storage.Disk_tree.of_tree tree in
    let r = Storage.Disk_tree.size_report dt in
    Printf.printf "disk image:      %.2f bytes/symbol\n"
      r.Storage.Disk_tree.bytes_per_symbol;
    let freqs = Scoring.Background.of_database db in
    List.iter
      (fun matrix ->
        if
          Bioseq.Alphabet.name (Scoring.Submat.alphabet matrix)
          = Bioseq.Alphabet.name alphabet
        then
          match Scoring.Karlin.estimate ~matrix ~freqs () with
          | params ->
            Format.printf "karlin (%s): %a@." (Scoring.Submat.name matrix)
              Scoring.Karlin.pp_params params
          | exception Scoring.Karlin.Unsupported_matrix _ -> ())
      Scoring.Matrices.all
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Database, index and statistical parameters summary.")
    Term.(const run $ fasta_arg ~doc:"FASTA database." "db" $ alphabet_arg)

(* --- serve / client: the always-on daemon --- *)

let socket_arg =
  Arg.(required & opt (some string) None & info [ "socket" ] ~docv:"PATH"
         ~doc:"Unix-domain socket path of the daemon.")

let serve_cmd =
  let run fasta alphabet index_dir socket workers queue_depth buffer_blocks
      allow_sleep =
    if workers < 1 then failwith "--workers must be >= 1";
    if queue_depth < 0 then failwith "--queue-depth must be >= 0";
    let load_db fasta =
      Bioseq.Database.make (Bioseq.Fasta.read_file ~alphabet fasta)
    in
    (* Same index dispatch as `oasis search`, but each backend is built
       once per worker and stays open across requests. *)
    let make_worker =
      match index_dir with
      | Some dir when Storage.Live_index.exists (Storage.Vfs.dir dir) ->
        fun _ -> Serve.Backend.live ~dir ~alphabet ()
      | Some dir ->
        let fasta =
          match fasta with
          | Some f -> f
          | None -> failwith "--db is required with a static --index"
        in
        let db = load_db fasta in
        if Storage.Shard_manifest.exists ~dir then fun _ ->
          Serve.Backend.sharded ~dir ~alphabet ~db ~buffer_blocks ()
        else fun _ -> Serve.Backend.disk ~dir ~alphabet ~db ~buffer_blocks ()
      | None ->
        let fasta =
          match fasta with
          | Some f -> f
          | None -> failwith "give --db or --index"
        in
        let db = load_db fasta in
        (* One immutable tree image serves every worker; each worker
           only owns an engine session (the reentrancy unit). *)
        let tree = Suffix_tree.Ukkonen.build db in
        fun _ -> Serve.Backend.mem ~tree ~db ()
    in
    let cfg =
      Serve.Server.config ~workers ~queue_depth ~allow_sleep ~alphabet
        ~socket_path:socket ()
    in
    let server = Serve.Server.create cfg ~make_worker in
    Printf.printf "listening on %s (%d workers, queue depth %d)\n%!" socket
      workers queue_depth;
    Serve.Server.run server;
    Printf.printf "daemon stopped\n%!"
  in
  let workers =
    Arg.(value & opt int 4 & info [ "workers" ] ~docv:"N"
           ~doc:"Worker domains serving queries concurrently.")
  in
  let queue_depth =
    Arg.(value & opt int 16 & info [ "queue-depth" ] ~docv:"N"
           ~doc:"Connections admitted beyond the running workers before \
                 the daemon answers with a typed overload reject.")
  in
  let buffer_blocks =
    Arg.(value & opt int 4096 & info [ "buffer-blocks" ] ~docv:"N"
           ~doc:"Per-worker buffer pool capacity in 2K blocks (disk \
                 indexes only; split across shards of a sharded index).")
  in
  let allow_sleep =
    Arg.(value & flag & info [ "allow-sleep" ]
           ~doc:"Honor the protocol's sleep verb, which holds a worker \
                 idle for a requested duration. Load-testing only.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the always-on search daemon on a Unix-domain socket: the \
             index stays open across requests, queries run concurrently on \
             a worker-domain pool, and hits stream to clients online (in \
             non-increasing score order), so a client can hang up at any \
             score threshold and the daemon aborts the remaining work.")
    Term.(
      const run
      $ opt_fasta_arg
          ~doc:"FASTA database (builds an in-memory index shared by all \
                workers; with a static --index it names the database the \
                index was built on)."
          "db"
      $ alphabet_arg
      $ Arg.(value & opt (some string) None & info [ "index" ] ~docv:"DIR"
               ~doc:"Serve an on-disk index directory (static, sharded, or \
                     live log-structured).")
      $ socket_arg $ workers $ queue_depth $ buffer_blocks $ allow_sleep)

let reject_to_string = function
  | Serve.Protocol.Overloaded { in_flight; capacity } ->
    Printf.sprintf "overloaded (%d in flight / capacity %d)" in_flight
      capacity
  | Serve.Protocol.Bad_request msg -> "bad request: " ^ msg
  | Serve.Protocol.Shutting_down -> "shutting down"
  | Serve.Protocol.Server_error msg -> "server error: " ^ msg

(* A reject is not a usage error: exit 3 so scripts (and the CI overload
   test) can tell a typed refusal from a failure. *)
let client_reject r =
  Printf.eprintf "oasis client: rejected: %s\n" (reject_to_string r);
  exit 3

let client_transport e =
  failwith ("daemon connection: " ^ Serve.Protocol.error_to_string e)

let client_search_cmd =
  let run socket query_text matrix gap_penalty gap_open min_score top
      max_columns max_nodes time_limit disconnect_after seed_cutoff =
    let gap =
      match gap_open with
      | None -> Serve.Protocol.Linear { penalty = gap_penalty }
      | Some open_cost ->
        Serve.Protocol.Affine { open_cost; extend_cost = gap_penalty }
    in
    let req =
      {
        Serve.Protocol.query = query_text;
        matrix = Scoring.Submat.name matrix;
        gap;
        min_score;
        max_hits = Some top;
        max_columns;
        max_expanded = max_nodes;
        time_limit;
        seed_cutoff;
      }
    in
    (* Hit lines print exactly as `oasis search --format plain` does, so
       the daemon e2e can diff the two streams byte for byte. *)
    let on_hit i (h : Serve.Protocol.hit) =
      Printf.printf "%4d. %-24s score %-5d (ends: query %d, target %d)\n" i
        h.seq_id h.score h.query_stop h.target_stop
    in
    match Serve.Client.search ?stop_after:disconnect_after ~path:socket
            ~on_hit req
    with
    | Serve.Client.Finished { outcome; _ } -> (
      match outcome with
      | Serve.Protocol.Exhausted { remaining_bound } ->
        Printf.printf "# budget exhausted: unreported hits score <= %d\n"
          remaining_bound
      | Serve.Protocol.Complete -> ())
    | Serve.Client.Cut n -> Printf.printf "# disconnected after %d hits\n" n
    | Serve.Client.Rejected r -> client_reject r
    | Serve.Client.Transport e -> client_transport e
  in
  let query =
    Arg.(required & opt (some string) None & info [ "query" ] ~docv:"SEQ"
           ~doc:"Query sequence (residues).")
  in
  let matrix =
    Arg.(value & opt matrix_conv Scoring.Matrices.pam30 & info [ "matrix" ]
           ~docv:"NAME" ~doc:"Substitution matrix.")
  in
  let gap =
    Arg.(value & opt int 10 & info [ "gap" ] ~docv:"G"
           ~doc:"Gap penalty per symbol (the extension cost when \
                 --gap-open is given).")
  in
  let gap_open =
    Arg.(value & opt (some int) None & info [ "gap-open" ] ~docv:"GO"
           ~doc:"Affine gap opening cost; switches to the affine model.")
  in
  let min_score =
    Arg.(value & opt int 1 & info [ "min-score" ] ~docv:"S"
           ~doc:"Minimum alignment score to report.")
  in
  let top =
    Arg.(value & opt int 25 & info [ "top" ] ~docv:"K"
           ~doc:"Stop after K results (they stream in best-first).")
  in
  let max_columns =
    Arg.(value & opt (some int) None & info [ "max-columns" ] ~docv:"N"
           ~doc:"Per-request budget: stop after N DP columns.")
  in
  let max_nodes =
    Arg.(value & opt (some int) None & info [ "max-nodes" ] ~docv:"N"
           ~doc:"Per-request budget: stop after N node expansions.")
  in
  let time_limit =
    Arg.(value & opt (some float) None & info [ "time-limit" ]
           ~docv:"SECONDS" ~doc:"Per-request wall-clock budget.")
  in
  let seed_cutoff =
    Arg.(value & flag & info [ "seed-cutoff" ]
           ~doc:"Ask the daemon to seed its prune cutoff with a fast BLAST \
                 first pass (exact for the --top-capped stream; see \
                 $(b,oasis search --seed-cutoff)).")
  in
  let disconnect_after =
    Arg.(value & opt (some int) None & info [ "disconnect-after" ] ~docv:"N"
           ~doc:"Hang up right after the N-th hit — the online protocol's \
                 early exit; the daemon aborts the remaining work.")
  in
  Cmd.v
    (Cmd.info "search" ~doc:"Stream a search from the daemon.")
    Term.(
      const run $ socket_arg $ query $ matrix $ gap $ gap_open $ min_score
      $ top $ max_columns $ max_nodes $ time_limit $ disconnect_after
      $ seed_cutoff)

let client_simple_cmd name doc req render =
  Cmd.v
    (Cmd.info name ~doc)
    Term.(
      const (fun socket ->
          match Serve.Client.request ~path:socket req with
          | Ok resp -> render resp
          | Error e -> client_transport e)
      $ socket_arg)

let client_render_pong = function
  | Serve.Protocol.Pong -> print_endline "pong"
  | Serve.Protocol.Reject r -> client_reject r
  | _ -> failwith "unexpected daemon response"

let client_cmd =
  let stats =
    client_simple_cmd "stats"
      "Print the daemon's SLO counters and latency quantiles." Serve.Protocol.Stats
      (function
        | Serve.Protocol.Stats_reply items ->
          List.iter (fun (k, v) -> Printf.printf "%-28s %d\n" k v) items
        | Serve.Protocol.Reject r -> client_reject r
        | _ -> failwith "unexpected daemon response")
  in
  let ping = client_simple_cmd "ping" "Check the daemon is alive."
      Serve.Protocol.Ping client_render_pong
  in
  let shutdown =
    client_simple_cmd "shutdown"
      "Ask the daemon to stop (in-flight requests drain first)."
      Serve.Protocol.Shutdown (function
      | Serve.Protocol.Pong -> print_endline "shutdown requested"
      | Serve.Protocol.Reject r -> client_reject r
      | _ -> failwith "unexpected daemon response")
  in
  let sleep =
    let run socket ms =
      match Serve.Client.request ~path:socket (Serve.Protocol.Sleep ms) with
      | Ok Serve.Protocol.Pong -> ()
      | Ok (Serve.Protocol.Reject r) -> client_reject r
      | Ok _ -> failwith "unexpected daemon response"
      | Error e -> client_transport e
    in
    let ms =
      Arg.(value & opt int 1000 & info [ "ms" ] ~docv:"MS"
             ~doc:"How long to hold the worker.")
    in
    Cmd.v
      (Cmd.info "sleep"
         ~doc:"Hold a daemon worker idle (needs a daemon started with \
               --allow-sleep). Load-testing only.")
      Term.(const run $ socket_arg $ ms)
  in
  Cmd.group
    (Cmd.info "client" ~doc:"Talk to a running search daemon.")
    [ client_search_cmd; stats; ping; shutdown; sleep ]

let () =
  let doc = "accurate online local-alignment search (OASIS, VLDB 2003)" in
  let cmd =
    Cmd.group (Cmd.info "oasis" ~version:"1.0.0" ~doc)
      [
        generate_cmd;
        index_cmd;
        append_cmd;
        compact_cmd;
        search_cmd;
        batch_cmd;
        compare_cmd;
        verify_index_cmd;
        stats_cmd;
        serve_cmd;
        client_cmd;
      ]
  in
  (* Expected failures print one clean line, not a backtrace. *)
  try exit (Cmd.eval ~catch:false cmd) with
  | Storage.Io_error info ->
    Printf.eprintf "oasis: %s\n" (Storage.Io_error.to_string info);
    exit 2
  | Storage.Disk_tree.Corrupt { component; message } ->
    Printf.eprintf "oasis: corrupt index (%s component): %s\n" component
      message;
    exit 2
  | Storage.Shard_manifest.Corrupt message ->
    Printf.eprintf "oasis: corrupt index (shard manifest): %s\n" message;
    exit 2
  | Storage.Segment_log.Corrupt message ->
    Printf.eprintf "oasis: corrupt index (segment log): %s\n" message;
    exit 2
  | Storage.Catalog.Corrupt message ->
    Printf.eprintf "oasis: corrupt index (catalog): %s\n" message;
    exit 2
  | Failure msg | Invalid_argument msg ->
    Printf.eprintf "oasis: %s\n" msg;
    exit 2
