(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§4) against the synthetic SWISS-PROT substitute.

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- fig3    # one experiment
                                  (table2 space fig3 fig4 fig5 fig6 fig7 fig8
                                   fig9 ablation longq affine dna quasar layout
                                   edit parallel micro kernel filter scaling)
     dune exec bench/main.exe -- --quick kernel
                                         # CI mode: small database, few
                                         # queries; with no experiment names
                                         # --quick runs just the kernel bench

   The [kernel] experiment races the pooled engine against the
   executable reference implementation (Oasis.Reference) on the protein
   workload, asserts bit-identical hit streams, and writes the numbers
   (columns/sec, nodes/sec, minor-GC words per column, peak pool bytes)
   to BENCH_oasis.json in the current directory. The [scaling]
   experiment measures the sharded multicore search (Oasis.Parallel) at
   1, 2 and 4 shards, gates on hit-stream equality against the plain
   engine, and writes its own BENCH_oasis.json section. The JSON file
   holds one top-level object per experiment ({"kernel": .., "scaling":
   ..}); each experiment rewrites only its own section.

   Environment knobs:
     OASIS_BENCH_DB       database size in residues   (default 300_000)
     OASIS_BENCH_QPL      queries per length bucket   (default 5)
     OASIS_BENCH_SEED     workload RNG seed           (default 2003)
     OASIS_BENCH_SEEK_MS  simulated seek penalty per buffer-pool miss,
                          used for the Figure 7 time model (default 5.0)

   Absolute numbers differ from the paper (their testbed was a 1.7 GHz
   Xeon over the real 40M-residue SWISS-PROT on a SCSI disk; this is a
   scaled synthetic database with counted I/O) — EXPERIMENTS.md records
   the shape comparisons that are expected to hold. *)

let env_int name default =
  match Sys.getenv_opt name with Some v -> int_of_string v | None -> default

let env_float name default =
  match Sys.getenv_opt name with Some v -> float_of_string v | None -> default

let quick = Array.exists (( = ) "--quick") Sys.argv

(* --suffix=_tag appends to every JSON section name this run writes:
   the flambda CI leg records its kernel numbers as "kernel_flambda_O3"
   without clobbering the default-toolchain baseline. *)
let section_suffix =
  Array.fold_left
    (fun acc a ->
      let p = "--suffix=" in
      if String.length a > String.length p
         && String.sub a 0 (String.length p) = p
      then String.sub a (String.length p) (String.length a - String.length p)
      else acc)
    "" Sys.argv
let db_symbols = env_int "OASIS_BENCH_DB" (if quick then 60_000 else 300_000)
let queries_per_length = env_int "OASIS_BENCH_QPL" (if quick then 2 else 5)
let seed = env_int "OASIS_BENCH_SEED" 2003
let seek_ms = env_float "OASIS_BENCH_SEEK_MS" 5.0

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let mean = function
  | [] -> nan
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let imean xs = mean (List.map float_of_int xs)

(* ------------------------------------------------------------------ *)
(* Shared setup: database, index, statistics, query workload.          *)
(* ------------------------------------------------------------------ *)

type setup = {
  db : Bioseq.Database.t;
  tree : Suffix_tree.Tree.t;
  packed : Suffix_tree.Packed.t Lazy.t;
      (** flat image of [tree]; the engine side of the throughput
          experiments searches this representation *)
  matrix : Scoring.Submat.t;
  gap : Scoring.Gap.t;
  params : Scoring.Karlin.params;
  rng : Workload.Rng.t;
  ancestors : Bioseq.Sequence.t array;
      (** family ancestors planted into the database *)
}

(* ProClass groups SWISS-PROT entries into families, and the paper's
   queries are family motifs: every query has strong, intermediate and
   distant homologs in the database. Reproduce that structure by
   planting mutated copies of a few long "ancestor" peptides at several
   divergence levels, and sampling queries as substrings of the
   ancestors. *)
let family_divergences = [ 0.1; 0.2; 0.35; 0.5 ]
let family_copies_per_divergence = 12
let num_families = 4
let ancestor_length = 64

let make_setup () =
  let rng = Workload.Rng.create ~seed in
  Printf.printf "# setup: generating %d-residue protein database (seed %d)\n%!"
    db_symbols seed;
  let db = Workload.Generate.protein_database rng ~target_symbols:db_symbols () in
  let ancestors =
    Array.init num_families (fun i ->
        Workload.Generate.protein_sequence rng
          ~id:(Printf.sprintf "ancestor%d" i)
          ~len:ancestor_length)
  in
  let db =
    Array.fold_left
      (fun db motif ->
        List.fold_left
          (fun db mutation_rate ->
            Workload.Generate.plant rng ~db ~motif
              ~copies:family_copies_per_divergence ~mutation_rate)
          db family_divergences)
      db ancestors
  in
  let tree, t_build = time (fun () -> Suffix_tree.Ukkonen.build db) in
  Printf.printf "# setup: %d sequences, suffix tree built in %.2fs\n%!"
    (Bioseq.Database.num_sequences db) t_build;
  let matrix = Scoring.Matrices.pam30 in
  let params =
    Scoring.Karlin.estimate ~matrix ~freqs:Scoring.Background.robinson_robinson ()
  in
  {
    db;
    tree;
    packed = lazy (Suffix_tree.Packed.of_tree tree);
    matrix;
    gap = Scoring.Gap.linear 10;
    params;
    rng;
    ancestors;
  }

let query_lengths = [ 6; 8; 10; 12; 16; 20; 26; 34; 44; 56 ]

(* A query of length [len]: a mutated substring of a family ancestor
   (motifs characterize families, as in ProClass). *)
let make_query setup ~len ~id =
  let ancestor =
    setup.ancestors.(Workload.Rng.int setup.rng (Array.length setup.ancestors))
  in
  let room = Bioseq.Sequence.length ancestor - len in
  let off = if room <= 0 then 0 else Workload.Rng.int setup.rng (room + 1) in
  let len = min len (Bioseq.Sequence.length ancestor) in
  let piece = Bioseq.Sequence.sub ancestor ~pos:off ~len in
  let piece =
    Bioseq.Sequence.of_codes
      ~alphabet:(Bioseq.Sequence.alphabet ancestor)
      ~id (Bioseq.Sequence.codes piece)
  in
  Workload.Motif.mutate setup.rng ~rate:0.08 piece

let workload setup =
  List.map
    (fun len ->
      ( len,
        List.init queries_per_length (fun i ->
            make_query setup ~len ~id:(Printf.sprintf "q%d_%d" len i)) ))
    query_lengths

(* The paper's E-value settings (E=1 .. E=20000) are relative to the 40M
   residues of SWISS-PROT. Equation 2 makes E proportional to the
   database size, so on a scaled database the equivalent selectivity —
   the same score threshold, hence the same per-sequence hit behaviour —
   is obtained by scaling E by our_n / 40M. All experiments quote the
   paper's E values and scale internally. *)
let paper_db_residues = float_of_int (env_int "OASIS_BENCH_PAPER_N" 40_000_000)

let scaled_evalue setup evalue =
  evalue
  *. float_of_int (Bioseq.Database.total_symbols setup.db)
  /. paper_db_residues

let min_score_for setup ~query ~evalue =
  Scoring.Karlin.score_for_evalue setup.params
    ~m:(Bioseq.Sequence.length query)
    ~n:(Bioseq.Database.total_symbols setup.db)
    ~evalue:(scaled_evalue setup evalue)

(* The scored job list shared by the kernel / obs / disk / edit / serve
   experiments: every workload query paired with its scaled-E score
   threshold. [max_len] drops the longest length buckets for
   experiments whose baseline side cannot afford them. *)
let scored_jobs ?max_len ?(evalue = 20000.) setup =
  List.concat_map
    (fun (len, qs) ->
      match max_len with
      | Some l when len > l -> []
      | _ -> List.map (fun q -> (q, min_score_for setup ~query:q ~evalue)) qs)
    (workload setup)

let run_oasis setup ~query ~evalue =
  let min_score = min_score_for setup ~query ~evalue in
  let engine =
    Oasis.Engine.Mem.create ~source:setup.tree ~db:setup.db ~query
      (Oasis.Engine.config ~matrix:setup.matrix ~gap:setup.gap ~min_score ())
  in
  let hits, t = time (fun () -> Oasis.Engine.Mem.run engine) in
  (hits, (Oasis.Engine.Mem.counters engine).Oasis.Engine.columns, t)

let run_sw setup ~query ~evalue =
  let min_score = min_score_for setup ~query ~evalue in
  let (hits, stats), t =
    time (fun () ->
        Align.Smith_waterman.search ~matrix:setup.matrix ~gap:setup.gap ~query
          ~db:setup.db ~min_score)
  in
  (hits, stats.Align.Smith_waterman.columns, t)

let run_blast setup ~query ~evalue =
  (* Two-hit seeding is the blastp 2.2 default. The neighborhood
     threshold is calibrated (T=10) so the baseline's sensitivity on the
     synthetic workload matches what the paper reports for NCBI BLAST on
     SWISS-PROT (Figure 5's ~60% additional matches); see
     EXPERIMENTS.md. *)
  let cfg =
    {
      (Blast.Search.default_protein ~evalue:(scaled_evalue setup evalue)
         ~two_hit:true ~matrix:setup.matrix ~gap:setup.gap ~params:setup.params
         ())
      with
      Blast.Search.threshold = 10;
    }
  in
  let (hits, _), t = time (fun () -> Blast.Search.search cfg ~query ~db:setup.db) in
  (hits, t)

(* One measurement of every method on one query; figures 3-6 are views
   of this record averaged per length bucket. *)
type qmeas = {
  len : int;
  oasis_hi_t : float;  (** E = 20000 *)
  oasis_hi_cols : int;
  oasis_hi_hits : int;
  oasis_lo_t : float;  (** E = 1 *)
  oasis_lo_hits : int;
  sw_t : float;
  sw_cols : int;
  blast_t : float;
  blast_hits : int;
}

let measure_query setup len query =
  let hi_hits, oasis_hi_cols, oasis_hi_t = run_oasis setup ~query ~evalue:20000. in
  let lo_hits, _, oasis_lo_t = run_oasis setup ~query ~evalue:1. in
  let sw_hits, sw_cols, sw_t = run_sw setup ~query ~evalue:20000. in
  let blast_hits, blast_t = run_blast setup ~query ~evalue:20000. in
  (* Invariant check while we are here: OASIS must agree with S-W. *)
  let key hits get = List.sort compare (List.map get hits) in
  if
    key hi_hits (fun h -> (h.Oasis.Hit.seq_index, h.Oasis.Hit.score))
    <> key sw_hits (fun h -> Align.Smith_waterman.(h.seq_index, h.score))
  then failwith "bench invariant violated: OASIS diverged from Smith-Waterman";
  {
    len;
    oasis_hi_t;
    oasis_hi_cols;
    oasis_hi_hits = List.length hi_hits;
    oasis_lo_t;
    oasis_lo_hits = List.length lo_hits;
    sw_t;
    sw_cols;
    blast_t;
    blast_hits = List.length blast_hits;
  }

let workload_measurements = ref None

let get_measurements setup =
  match !workload_measurements with
  | Some m -> m
  | None ->
    Printf.printf "# measuring workload (%d lengths x %d queries)...\n%!"
      (List.length query_lengths) queries_per_length;
    let m =
      List.concat_map
        (fun (len, queries) ->
          let ms = List.map (measure_query setup len) queries in
          Printf.printf "#   len %2d done\n%!" len;
          ms)
        (workload setup)
    in
    workload_measurements := Some m;
    m

let by_length measurements =
  List.map
    (fun len -> (len, List.filter (fun m -> m.len = len) measurements))
    query_lengths

(* ------------------------------------------------------------------ *)
(* Table 2 (§2.2) and the §3.3 worked example.                          *)
(* ------------------------------------------------------------------ *)

let table2 _setup =
  print_endline "== Table 2: S-W matrix for TACG vs AGTACGCCTAG (unit matrix)";
  let alpha = Bioseq.Alphabet.dna in
  let query = Bioseq.Sequence.make ~alphabet:alpha ~id:"q" "TACG" in
  let target = Bioseq.Sequence.make ~alphabet:alpha ~id:"t" "AGTACGCCTAG" in
  let h =
    Align.Smith_waterman.dp_matrix ~matrix:Scoring.Matrices.dna_unit
      ~gap:(Scoring.Gap.linear 1) ~query ~target
  in
  Printf.printf "     %s\n"
    (String.concat "  " (List.init 11 (fun j -> Printf.sprintf "%c" (Bioseq.Sequence.char_at target j))));
  for i = 1 to 4 do
    Printf.printf "  %c " (Bioseq.Sequence.char_at query (i - 1));
    for j = 1 to 11 do
      Printf.printf "%2d " h.(i).(j)
    done;
    print_newline ()
  done;
  Printf.printf "  max score: 4 (paper: 4)\n";
  print_endline "";
  print_endline "== Figure 2: suffix tree on AGTACGCCTAG (compare with the paper's drawing)";
  let fig2_tree =
    Suffix_tree.Ukkonen.build
      (Bioseq.Database.make
         [ Bioseq.Sequence.make ~alphabet:alpha ~id:"s" "AGTACGCCTAG" ])
  in
  print_string (Suffix_tree.Export.to_ascii fig2_tree);
  print_endline "";
  print_endline "== §3.3 worked example: OASIS on the same input, minScore 1";
  let db = Bioseq.Database.make [ target ] in
  let tree = Suffix_tree.Ukkonen.build db in
  let engine =
    Oasis.Engine.Mem.create ~source:tree ~db ~query
      (Oasis.Engine.config ~matrix:Scoring.Matrices.dna_unit
         ~gap:(Scoring.Gap.linear 1) ~min_score:1 ())
  in
  (* Narrate the search the way §3.3 does. *)
  let step = ref 0 in
  Oasis.Engine.Mem.set_tracer engine (fun event ->
      incr step;
      match event with
      | Oasis.Engine.Popped p ->
        Printf.printf
          "  step %d: pop %s node (priority %d, path depth %d, best-on-path \
           %d, %d left on queue)\n"
          !step
          (if p.accepted then "ACCEPTED" else "viable")
          p.priority p.depth p.max_score p.queue_length
      | Oasis.Engine.Reported r ->
        Printf.printf "  step %d: report sequence %d with score %d\n" !step
          r.seq_index r.score);
  (match Oasis.Engine.Mem.next engine with
  | Some hit ->
    Printf.printf
      "  first online result: score %d at target [%d,%d) (paper: TACG -> \
       TACG, score 4, position 2)\n"
      hit.Oasis.Hit.score
      (hit.Oasis.Hit.target_stop - hit.Oasis.Hit.query_stop)
      hit.Oasis.Hit.target_stop
  | None -> print_endline "  UNEXPECTED: no result");
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Space utilization table (§4.2).                                      *)
(* ------------------------------------------------------------------ *)

let space setup =
  print_endline "== Space utilization (§4.2 table; paper: 12.5 bytes/symbol)";
  let dt, _pool = Storage.Disk_tree.of_tree ~block_size:2048 ~capacity:64 setup.tree in
  let r = Storage.Disk_tree.size_report dt in
  Printf.printf "  %-22s %12s\n" "component" "bytes";
  Printf.printf "  %-22s %12d\n" "symbols" r.Storage.Disk_tree.symbols_bytes;
  Printf.printf "  %-22s %12d\n" "internal nodes" r.Storage.Disk_tree.internal_bytes;
  Printf.printf "  %-22s %12d\n" "leaves" r.Storage.Disk_tree.leaves_bytes;
  Printf.printf "  %-22s %12d\n" "total" r.Storage.Disk_tree.total_bytes;
  Printf.printf "  index size: %.2f bytes per database symbol (paper: 12.5)\n\n"
    r.Storage.Disk_tree.bytes_per_symbol

(* ------------------------------------------------------------------ *)
(* Figure 3: mean query time vs length, OASIS / BLAST / S-W, E=20000.   *)
(* ------------------------------------------------------------------ *)

let fig3 setup =
  let ms = get_measurements setup in
  print_endline
    "== Figure 3: mean query time (ms) vs query length, E=20000\n\
    \   (paper: OASIS ~ BLAST, both >= 10x faster than S-W on short queries)";
  Printf.printf "  %6s %10s %10s %10s %12s\n" "len" "OASIS" "BLAST" "S-W"
    "S-W/OASIS";
  let oasis_pts = ref [] and blast_pts = ref [] and sw_pts = ref [] in
  List.iter
    (fun (len, group) ->
      let o = 1000. *. mean (List.map (fun m -> m.oasis_hi_t) group) in
      let b = 1000. *. mean (List.map (fun m -> m.blast_t) group) in
      let s = 1000. *. mean (List.map (fun m -> m.sw_t) group) in
      oasis_pts := (float_of_int len, o) :: !oasis_pts;
      blast_pts := (float_of_int len, b) :: !blast_pts;
      sw_pts := (float_of_int len, s) :: !sw_pts;
      Printf.printf "  %6d %10.2f %10.2f %10.2f %11.1fx\n" len o b s (s /. o))
    (by_length ms);
  print_newline ();
  print_string
    (Report.Chart.render ~y_scale:Report.Chart.Log10 ~x_label:"query length"
       ~y_label:"mean time (ms, log scale)"
       ~title:"  Figure 3 (regenerated)"
       [
         { Report.Chart.label = "OASIS"; mark = 'o'; points = List.rev !oasis_pts };
         { Report.Chart.label = "BLAST"; mark = 'b'; points = List.rev !blast_pts };
         { Report.Chart.label = "S-W"; mark = 's'; points = List.rev !sw_pts };
       ]);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Figure 4: columns expanded vs length, OASIS vs S-W.                  *)
(* ------------------------------------------------------------------ *)

let fig4 setup =
  let ms = get_measurements setup in
  print_endline
    "== Figure 4: DP columns expanded vs query length, E=20000\n\
    \   (paper: OASIS expands 3.9% of S-W's columns on average, 18.5% worst)";
  Printf.printf "  %6s %12s %12s %9s\n" "len" "OASIS" "S-W" "OASIS%";
  let ratios = ref [] in
  List.iter
    (fun (len, group) ->
      let o = imean (List.map (fun m -> m.oasis_hi_cols) group) in
      let s = imean (List.map (fun m -> m.sw_cols) group) in
      ratios := (100. *. o /. s) :: !ratios;
      Printf.printf "  %6d %12.0f %12.0f %8.1f%%\n" len o s (100. *. o /. s))
    (by_length ms);
  Printf.printf "  average ratio: %.1f%% (paper: 3.9%%)  worst: %.1f%% (paper: 18.5%%)\n\n"
    (mean !ratios)
    (List.fold_left max 0. !ratios)

(* ------------------------------------------------------------------ *)
(* Figure 5: % additional matches found by OASIS over BLAST.            *)
(* ------------------------------------------------------------------ *)

let fig5 setup =
  let ms = get_measurements setup in
  print_endline
    "== Figure 5: additional matches found by OASIS vs BLAST, E=20000\n\
    \   (paper: OASIS returns ~60% more matches on average)";
  Printf.printf "  %6s %10s %10s %12s\n" "len" "OASIS" "BLAST" "additional";
  let extras = ref [] in
  List.iter
    (fun (len, group) ->
      let o = imean (List.map (fun m -> m.oasis_hi_hits) group) in
      let b = imean (List.map (fun m -> m.blast_hits) group) in
      let extra = if b > 0. then 100. *. (o -. b) /. b else 0. in
      extras := extra :: !extras;
      Printf.printf "  %6d %10.0f %10.0f %11.1f%%\n" len o b extra)
    (by_length ms);
  Printf.printf "  average additional matches: %.1f%% (paper: ~60%%)\n\n" (mean !extras)

(* ------------------------------------------------------------------ *)
(* Figure 6: effect of selectivity (E=1 vs E=20000).                    *)
(* ------------------------------------------------------------------ *)

let fig6 setup =
  let ms = get_measurements setup in
  print_endline
    "== Figure 6: mean OASIS time (ms) vs query length at E=1 and E=20000\n\
    \   (paper: E=1 is far faster on short queries; the gap narrows with \
     length)";
  Printf.printf "  %6s %12s %12s %10s\n" "len" "E=1" "E=20000" "ratio";
  let lo_pts = ref [] and hi_pts = ref [] in
  List.iter
    (fun (len, group) ->
      let lo = 1000. *. mean (List.map (fun m -> m.oasis_lo_t) group) in
      let hi = 1000. *. mean (List.map (fun m -> m.oasis_hi_t) group) in
      lo_pts := (float_of_int len, max 0.0005 lo) :: !lo_pts;
      hi_pts := (float_of_int len, max 0.0005 hi) :: !hi_pts;
      (* Clamp the denominator: sub-microsecond E=1 runs make the ratio
         meaningless. *)
      Printf.printf "  %6d %12.3f %12.3f %9.1fx\n" len lo hi (hi /. max 0.005 lo))
    (by_length ms);
  print_newline ();
  print_string
    (Report.Chart.render ~y_scale:Report.Chart.Log10 ~x_label:"query length"
       ~y_label:"mean OASIS time (ms, log scale)"
       ~title:"  Figure 6 (regenerated)"
       [
         { Report.Chart.label = "E=1"; mark = '1'; points = List.rev !lo_pts };
         { Report.Chart.label = "E=20000"; mark = '2'; points = List.rev !hi_pts };
       ]);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Figures 7 and 8: buffer pool size sweeps (disk engine).              *)
(* ------------------------------------------------------------------ *)

type pool_meas = {
  fraction : float;
  blocks : int;
  sim_time : float;  (** wall + misses * seek penalty, per query *)
  wall : float;
  misses_per_query : float;
  ratios : (string * float) list;  (** per-component hit ratios *)
}

let pool_sweep setup =
  let block_size = 2048 in
  let symbols = Storage.Device.in_memory ()
  and internal = Storage.Device.in_memory ()
  and leaves = Storage.Device.in_memory () in
  Storage.Disk_tree.write setup.tree ~symbols ~internal ~leaves;
  let total_bytes =
    Storage.Device.length symbols + Storage.Device.length internal
    + Storage.Device.length leaves
  in
  let total_blocks = (total_bytes + block_size - 1) / block_size in
  let queries =
    List.concat_map
      (fun len ->
        List.init
          (min 3 queries_per_length)
          (fun i -> make_query setup ~len ~id:(Printf.sprintf "pool%d_%d" len i)))
      [ 8; 12; 16 ]
  in
  let fractions = [ 0.0625; 0.125; 0.25; 0.5; 1.0 ] in
  List.map
    (fun fraction ->
      let capacity = max 8 (int_of_float (fraction *. float_of_int total_blocks)) in
      let pool = Storage.Buffer_pool.create ~block_size ~capacity in
      let dt =
        Storage.Disk_tree.open_
          ~alphabet:(Bioseq.Database.alphabet setup.db)
          ~pool ~symbols ~internal ~leaves ()
      in
      let wall = ref 0. in
      List.iter
        (fun query ->
          let min_score = min_score_for setup ~query ~evalue:20000. in
          let engine =
            Oasis.Engine.Disk.create ~source:dt ~db:setup.db ~query
              (Oasis.Engine.config ~matrix:setup.matrix ~gap:setup.gap
                 ~min_score ())
          in
          let _, t = time (fun () -> Oasis.Engine.Disk.run engine) in
          wall := !wall +. t)
        queries;
      let nq = float_of_int (List.length queries) in
      let component name comp =
        (name, Storage.Buffer_pool.hit_ratio (Storage.Disk_tree.component_stats dt comp))
      in
      let misses =
        List.fold_left
          (fun acc comp ->
            acc + (Storage.Disk_tree.component_stats dt comp).Storage.Buffer_pool.misses)
          0
          [ Storage.Disk_tree.Symbols; Internal_nodes; Leaves ]
      in
      {
        fraction;
        blocks = capacity;
        wall = !wall /. nq;
        sim_time =
          ((!wall +. (float_of_int misses *. seek_ms /. 1000.)) /. nq);
        misses_per_query = float_of_int misses /. nq;
        ratios =
          [
            component "symbols" Storage.Disk_tree.Symbols;
            component "internal" Storage.Disk_tree.Internal_nodes;
            component "leaves" Storage.Disk_tree.Leaves;
          ];
      })
    fractions

let pool_results = ref None

let get_pool_results setup =
  match !pool_results with
  | Some r -> r
  | None ->
    Printf.printf "# sweeping buffer pool sizes (disk engine)...\n%!";
    let r = pool_sweep setup in
    pool_results := Some r;
    r

let fig7 setup =
  let results = get_pool_results setup in
  print_endline
    "== Figure 7: mean query time vs buffer pool size (disk-resident tree)\n\
    \   (simulated: wall time + misses x seek penalty; paper: sharp \
     degradation below 1/4 of the tree)";
  Printf.printf "  %10s %10s %12s %14s %14s\n" "pool/index" "blocks" "wall(ms)"
    "misses/query" "sim time (ms)";
  List.iter
    (fun r ->
      Printf.printf "  %9.2f%% %10d %12.2f %14.0f %14.1f\n" (100. *. r.fraction)
        r.blocks (1000. *. r.wall) r.misses_per_query (1000. *. r.sim_time))
    results;
  print_newline ()

let fig8 setup =
  let results = get_pool_results setup in
  print_endline
    "== Figure 8: buffer hit ratio per suffix-tree component vs pool size\n\
    \   (paper: internal nodes cache best — they are the only \
     layout-clustered component)";
  Printf.printf "  %10s %10s %10s %10s\n" "pool/index" "symbols" "internal"
    "leaves";
  List.iter
    (fun r ->
      let get name = List.assoc name r.ratios in
      Printf.printf "  %9.2f%% %10.3f %10.3f %10.3f\n" (100. *. r.fraction)
        (get "symbols") (get "internal") (get "leaves"))
    results;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Figure 9: online behaviour of a single query.                        *)
(* ------------------------------------------------------------------ *)

let fig9 setup =
  print_endline
    "== Figure 9: online behaviour, 13-residue family motif query, E=20000\n\
    \   (paper: first 40 results in under 0.04s while the full run takes \
     much longer)";
  (* The paper uses the 13-residue ProClass motif DKDGDGCITTKEL; the
     equivalent here is a 13-residue family-motif query. *)
  let query = make_query setup ~len:13 ~id:"motif13" in
  let min_score = min_score_for setup ~query ~evalue:20000. in
  let engine =
    Oasis.Engine.Mem.create ~source:setup.tree ~db:setup.db ~query
      (Oasis.Engine.config ~matrix:setup.matrix ~gap:setup.gap ~min_score ())
  in
  let t0 = Unix.gettimeofday () in
  let marks = ref [] in
  let rec stream rank =
    match Oasis.Engine.Mem.next engine with
    | None -> rank - 1
    | Some hit ->
      let elapsed = Unix.gettimeofday () -. t0 in
      let logpoint =
        rank <= 4
        || rank mod 10 = 0
           && (rank <= 100 || rank mod 100 = 0 || rank mod 1000 = 0)
      in
      if logpoint then marks := (rank, elapsed, hit.Oasis.Hit.score) :: !marks;
      stream (rank + 1)
  in
  let total = stream 1 in
  let t_total = Unix.gettimeofday () -. t0 in
  let _, t_sw = time (fun () -> run_sw setup ~query ~evalue:20000.) in
  let _, t_blast = time (fun () -> run_blast setup ~query ~evalue:20000.) in
  Printf.printf "  %8s %12s %8s\n" "result#" "elapsed(ms)" "score";
  List.iter
    (fun (rank, t, score) -> Printf.printf "  %8d %12.3f %8d\n" rank (1000. *. t) score)
    (List.rev !marks);
  print_string
    (Report.Chart.render ~x_scale:Report.Chart.Log10
       ~y_scale:Report.Chart.Log10 ~x_label:"results returned (log)"
       ~y_label:"elapsed (ms, log)" ~title:"  Figure 9 (regenerated)"
       [
         {
           Report.Chart.label = "OASIS online";
           mark = 'o';
           points =
             List.rev_map
               (fun (rank, t, _) -> (float_of_int rank, max 0.001 (1000. *. t)))
               !marks;
         };
       ]);
  Printf.printf
    "  total: %d results in %.1f ms; S-W needs %.1f ms and BLAST %.1f ms \
     before the FIRST result\n\n"
    total (1000. *. t_total) (1000. *. t_sw) (1000. *. t_blast)

(* ------------------------------------------------------------------ *)
(* Ablations: pruning rules, heuristic style, block size.               *)
(* ------------------------------------------------------------------ *)

let ablation setup =
  print_endline "== Ablation: OASIS design choices (E=20000 workload slice)";
  let queries =
    List.concat_map
      (fun len ->
        List.init
          (min 3 queries_per_length)
          (fun i -> make_query setup ~len ~id:(Printf.sprintf "abl%d_%d" len i)))
      [ 8; 12; 16; 26 ]
  in
  let variants =
    [
      ("full pruning (default)", Oasis.Engine.default_options);
      ( "no rule-1 (non-positive)",
        { Oasis.Engine.default_options with prune_nonpositive = false } );
      ( "no rule-2 (dominated)",
        { Oasis.Engine.default_options with prune_dominated = false } );
      ( "no rule-1, no rule-2",
        {
          Oasis.Engine.prune_nonpositive = false;
          prune_dominated = false;
          heuristic = Oasis.Heuristic.Safe;
        } );
      ( "paper heuristic (no gap term)",
        { Oasis.Engine.default_options with heuristic = Oasis.Heuristic.Paper } );
    ]
  in
  Printf.printf "  %-30s %12s %12s %10s\n" "variant" "columns" "time(ms)" "vs base";
  let base_cols = ref 0. in
  List.iter
    (fun (name, options) ->
      let cols = ref 0 and wall = ref 0. in
      List.iter
        (fun query ->
          let min_score = min_score_for setup ~query ~evalue:20000. in
          let engine =
            Oasis.Engine.Mem.create ~source:setup.tree ~db:setup.db ~query
              (Oasis.Engine.config ~options ~matrix:setup.matrix ~gap:setup.gap
                 ~min_score ())
          in
          let _, t = time (fun () -> Oasis.Engine.Mem.run engine) in
          wall := !wall +. t;
          cols := !cols + (Oasis.Engine.Mem.counters engine).Oasis.Engine.columns)
        queries;
      if !base_cols = 0. then base_cols := float_of_int !cols;
      Printf.printf "  %-30s %12d %12.1f %9.2fx\n" name !cols (1000. *. !wall)
        (float_of_int !cols /. !base_cols))
    variants;
  print_newline ();
  print_endline "== Ablation: disk block size (misses per query, pool = 1/4 index)";
  let queries =
    List.init
      (min 3 queries_per_length)
      (fun i -> make_query setup ~len:12 ~id:(Printf.sprintf "blk%d" i))
  in
  Printf.printf "  %12s %10s %14s\n" "block size" "blocks" "misses/query";
  List.iter
    (fun block_size ->
      let symbols = Storage.Device.in_memory ()
      and internal = Storage.Device.in_memory ()
      and leaves = Storage.Device.in_memory () in
      Storage.Disk_tree.write setup.tree ~symbols ~internal ~leaves;
      let total_bytes =
        Storage.Device.length symbols + Storage.Device.length internal
        + Storage.Device.length leaves
      in
      let capacity = max 8 (total_bytes / block_size / 4) in
      let pool = Storage.Buffer_pool.create ~block_size ~capacity in
      let dt =
        Storage.Disk_tree.open_
          ~alphabet:(Bioseq.Database.alphabet setup.db)
          ~pool ~symbols ~internal ~leaves ()
      in
      List.iter
        (fun query ->
          let min_score = min_score_for setup ~query ~evalue:20000. in
          let engine =
            Oasis.Engine.Disk.create ~source:dt ~db:setup.db ~query
              (Oasis.Engine.config ~matrix:setup.matrix ~gap:setup.gap
                 ~min_score ())
          in
          ignore (Oasis.Engine.Disk.run engine))
        queries;
      let misses =
        List.fold_left
          (fun acc comp ->
            acc + (Storage.Disk_tree.component_stats dt comp).Storage.Buffer_pool.misses)
          0
          [ Storage.Disk_tree.Symbols; Internal_nodes; Leaves ]
      in
      Printf.printf "  %12d %10d %14.0f\n" block_size capacity
        (float_of_int misses /. float_of_int (List.length queries)))
    [ 512; 2048; 8192 ];
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Long queries: direct engine vs segmented filter-and-refine (§6).     *)
(* ------------------------------------------------------------------ *)

let longq setup =
  print_endline
    "== Long queries: direct OASIS vs segmented filter-and-refine (§6 future \
     work)\n\
    \   (both stay exact; segmentation pays off only when the threshold is \
     selective\n\
    \    enough that segment searches reject most sequences)";
  let run_at evalue =
    Printf.printf "  E=%g:\n" evalue;
    Printf.printf "  %6s %12s %12s %12s %12s\n" "len" "direct(ms)" "seg2(ms)"
      "seg4(ms)" "candidates";
    List.iter
      (fun len ->
        let queries =
          List.init
            (min 3 queries_per_length)
            (fun i ->
              make_query setup ~len ~id:(Printf.sprintf "lq%g_%d_%d" evalue len i))
        in
        let direct = ref 0. and seg2 = ref 0. and seg4 = ref 0. in
        let cands = ref 0 in
        List.iter
          (fun query ->
            let min_score = min_score_for setup ~query ~evalue in
            let cfg =
              Oasis.Engine.config ~matrix:setup.matrix ~gap:setup.gap ~min_score ()
            in
            let d_hits = ref [] in
            let _, t =
              time (fun () ->
                  d_hits :=
                    Oasis.Engine.Mem.run
                      (Oasis.Engine.Mem.create ~source:setup.tree ~db:setup.db
                         ~query cfg))
            in
            direct := !direct +. t;
            let check name hits =
              let key h = (h.Oasis.Hit.seq_index, h.Oasis.Hit.score) in
              if
                List.sort compare (List.map key hits)
                <> List.sort compare (List.map key !d_hits)
              then failwith ("long-query variant diverged: " ^ name)
            in
            let (h2, s2), t2 =
              time (fun () ->
                  Oasis.Long_query.Mem.search ~source:setup.tree ~db:setup.db
                    ~query ~segments:2 cfg)
            in
            check "seg2" h2;
            seg2 := !seg2 +. t2;
            cands := !cands + s2.Oasis.Long_query.candidates;
            let (h4, _), t4 =
              time (fun () ->
                  Oasis.Long_query.Mem.search ~source:setup.tree ~db:setup.db
                    ~query ~segments:4 cfg)
            in
            check "seg4" h4;
            seg4 := !seg4 +. t4)
          queries;
        let nq = float_of_int (List.length queries) in
        Printf.printf "  %6d %12.1f %12.1f %12.1f %12.0f\n" len
          (1000. *. !direct /. nq) (1000. *. !seg2 /. nq) (1000. *. !seg4 /. nq)
          (float_of_int !cands /. nq))
      [ 26; 34; 44; 56 ]
  in
  run_at 20000.;
  run_at 1.;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Affine gaps: engine extension vs Gotoh S-W (§6).                     *)
(* ------------------------------------------------------------------ *)

let affine setup =
  print_endline
    "== Affine gaps (engine extension of §6): OASIS vs Gotoh S-W, E=20000 \
     thresholds";
  let gap = Scoring.Gap.affine ~open_cost:9 ~extend_cost:2 in
  Printf.printf "  %6s %12s %12s %10s %8s\n" "len" "OASIS(ms)" "S-W(ms)"
    "speedup" "agree";
  List.iter
    (fun len ->
      let queries =
        List.init
          (min 3 queries_per_length)
          (fun i -> make_query setup ~len ~id:(Printf.sprintf "af%d_%d" len i))
      in
      let oasis_t = ref 0. and sw_t = ref 0. and agree = ref true in
      List.iter
        (fun query ->
          let min_score = min_score_for setup ~query ~evalue:20000. in
          let cfg = Oasis.Engine.config ~matrix:setup.matrix ~gap ~min_score () in
          let hits = ref [] in
          let _, t =
            time (fun () ->
                hits :=
                  Oasis.Engine.Mem.run
                    (Oasis.Engine.Mem.create ~source:setup.tree ~db:setup.db
                       ~query cfg))
          in
          oasis_t := !oasis_t +. t;
          let (sw_hits, _), t_sw =
            time (fun () ->
                Align.Smith_waterman.search ~matrix:setup.matrix ~gap ~query
                  ~db:setup.db ~min_score)
          in
          sw_t := !sw_t +. t_sw;
          let key_o h = (h.Oasis.Hit.seq_index, h.Oasis.Hit.score) in
          let key_s h = Align.Smith_waterman.(h.seq_index, h.score) in
          if
            List.sort compare (List.map key_o !hits)
            <> List.sort compare (List.map key_s sw_hits)
          then agree := false)
        queries;
      let nq = float_of_int (List.length queries) in
      Printf.printf "  %6d %12.1f %12.1f %9.1fx %8b\n" len
        (1000. *. !oasis_t /. nq) (1000. *. !sw_t /. nq) (!sw_t /. !oasis_t)
        !agree)
    [ 8; 12; 16; 26 ];
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Nucleotide data (§4.1: Drosophila results, omitted in the paper).    *)
(* ------------------------------------------------------------------ *)

let dna _setup =
  print_endline
    "== Nucleotide search (the paper's §4.1 Drosophila claim: OASIS beats \
     S-W by orders of magnitude)";
  let rng = Workload.Rng.create ~seed:(seed + 1) in
  let target = max 50_000 (db_symbols / 2) in
  let db =
    Workload.Generate.dna_database rng ~gc:0.43 ~num_sequences:24
      ~target_symbols:target ()
  in
  let tree = Suffix_tree.Ukkonen.build db in
  let matrix = Scoring.Matrices.dna_blast and gap = Scoring.Gap.linear 4 in
  Printf.printf "  database: %d nt in %d scaffolds\n" target 24;
  Printf.printf "  %6s %12s %12s %10s\n" "len" "OASIS(ms)" "S-W(ms)" "speedup";
  List.iter
    (fun len ->
      let queries =
        List.init 3 (fun i ->
            Workload.Motif.sample rng ~db ~len ~mutation_rate:0.05
              ~id:(Printf.sprintf "dq%d" i) ())
      in
      let oasis_t = ref 0. and sw_t = ref 0. in
      List.iter
        (fun query ->
          (* Selectivity comparable to a strong match: 80% of the
             query's maximal score. *)
          let min_score = max 1 (2 * len * 8 / 10) in
          let cfg = Oasis.Engine.config ~matrix ~gap ~min_score () in
          let hits = ref [] in
          let _, t =
            time (fun () ->
                hits :=
                  Oasis.Engine.Mem.run
                    (Oasis.Engine.Mem.create ~source:tree ~db ~query cfg))
          in
          oasis_t := !oasis_t +. t;
          let (sw_hits, _), t_sw =
            time (fun () ->
                Align.Smith_waterman.search ~matrix ~gap ~query ~db ~min_score)
          in
          sw_t := !sw_t +. t_sw;
          let key_o h = (h.Oasis.Hit.seq_index, h.Oasis.Hit.score) in
          let key_s h = Align.Smith_waterman.(h.seq_index, h.score) in
          if
            List.sort compare (List.map key_o !hits)
            <> List.sort compare (List.map key_s sw_hits)
          then failwith "dna experiment: OASIS diverged from S-W")
        queries;
      let nq = float_of_int (List.length queries) in
      Printf.printf "  %6d %12.2f %12.1f %9.0fx\n" len
        (1000. *. !oasis_t /. nq) (1000. *. !sw_t /. nq) (!sw_t /. !oasis_t))
    [ 12; 16; 24; 32 ];
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Leaf layout ablation (§4.5): position-indexed vs clustered leaves.   *)
(* ------------------------------------------------------------------ *)

let layout_exp setup =
  print_endline
    "== Leaf layout (§4.5): the paper's position-indexed scheme vs the \
     clustered\n\
    \   alternative it proposes (\"leaves stored contiguously with the \
     internal nodes\")";
  let block_size = 2048 in
  let queries =
    List.concat_map
      (fun len ->
        List.init
          (min 3 queries_per_length)
          (fun i -> make_query setup ~len ~id:(Printf.sprintf "ly%d_%d" len i)))
      [ 8; 12; 16 ]
  in
  Printf.printf "  %18s %10s %10s %10s %10s %14s\n" "layout" "pool/idx"
    "symbols" "internal" "leaves" "misses/query";
  List.iter
    (fun layout ->
      let symbols = Storage.Device.in_memory ()
      and internal = Storage.Device.in_memory ()
      and leaves = Storage.Device.in_memory () in
      Storage.Disk_tree.write ~layout setup.tree ~symbols ~internal ~leaves;
      let total_bytes =
        Storage.Device.length symbols + Storage.Device.length internal
        + Storage.Device.length leaves
      in
      List.iter
        (fun fraction ->
          let capacity =
            max 8
              (int_of_float
                 (fraction *. float_of_int (total_bytes / block_size)))
          in
          let pool = Storage.Buffer_pool.create ~block_size ~capacity in
          let dt =
            Storage.Disk_tree.open_
              ~alphabet:(Bioseq.Database.alphabet setup.db)
              ~pool ~symbols ~internal ~leaves ()
          in
          List.iter
            (fun query ->
              let min_score = min_score_for setup ~query ~evalue:20000. in
              let engine =
                Oasis.Engine.Disk.create ~source:dt ~db:setup.db ~query
                  (Oasis.Engine.config ~matrix:setup.matrix ~gap:setup.gap
                     ~min_score ())
              in
              ignore (Oasis.Engine.Disk.run engine))
            queries;
          let ratio comp =
            Storage.Buffer_pool.hit_ratio
              (Storage.Disk_tree.component_stats dt comp)
          in
          let misses =
            List.fold_left
              (fun acc comp ->
                acc
                + (Storage.Disk_tree.component_stats dt comp)
                    .Storage.Buffer_pool.misses)
              0
              [ Storage.Disk_tree.Symbols; Internal_nodes; Leaves ]
          in
          Printf.printf "  %18s %9.1f%% %10.3f %10.3f %10.3f %14.0f\n"
            (match layout with
            | Storage.Disk_tree.Position_indexed -> "position-indexed"
            | Storage.Disk_tree.Clustered -> "clustered")
            (100. *. fraction)
            (ratio Storage.Disk_tree.Symbols)
            (ratio Storage.Disk_tree.Internal_nodes)
            (ratio Storage.Disk_tree.Leaves)
            (float_of_int misses /. float_of_int (List.length queries)))
        [ 0.125; 0.25 ])
    [ Storage.Disk_tree.Position_indexed; Storage.Disk_tree.Clustered ];
  print_newline ()

(* ------------------------------------------------------------------ *)
(* QUASAR filter (§5 related work): filtering efficiency and accuracy.  *)
(* ------------------------------------------------------------------ *)

let quasar_exp setup =
  print_endline
    "== QUASAR q-gram filter (§5 related work; Kahveci-style filters leave \
     5-50% of the database)";
  let sa = Suffix_tree.Suffix_array.build setup.db in
  Printf.printf "  %6s %12s %12s %12s %12s\n" "len" "time(ms)" "verified%"
    "hits" "vs OASIS%";
  List.iter
    (fun len ->
      let queries =
        List.init
          (min 3 queries_per_length)
          (fun i -> make_query setup ~len ~id:(Printf.sprintf "qs%d_%d" len i))
      in
      let t_total = ref 0. and verified = ref 0 and hits = ref 0 in
      let oasis_hits = ref 0 in
      List.iter
        (fun query ->
          let min_score = min_score_for setup ~query ~evalue:20000. in
          let cfg =
            Quasar.Filter.config ~matrix:setup.matrix ~gap:setup.gap ~min_score
              ~query_length:(Bioseq.Sequence.length query) ()
          in
          let (h, stats), t = time (fun () -> Quasar.Filter.search cfg ~sa ~query) in
          t_total := !t_total +. t;
          verified := !verified + stats.Quasar.Filter.verified_symbols;
          hits := !hits + List.length h;
          let o, _, _ = run_oasis setup ~query ~evalue:20000. in
          oasis_hits := !oasis_hits + List.length o)
        queries;
      let nq = float_of_int (List.length queries) in
      Printf.printf "  %6d %12.1f %11.1f%% %12.0f %11.0f%%\n" len
        (1000. *. !t_total /. nq)
        (100.
        *. float_of_int !verified
        /. (nq *. float_of_int (Bioseq.Database.total_symbols setup.db)))
        (float_of_int !hits /. nq)
        (100. *. float_of_int !hits /. float_of_int (max 1 !oasis_hits)))
    [ 8; 12; 16; 26 ];
  print_newline ()

let bench_json_path = "BENCH_oasis.json"

(* BENCH_oasis.json holds one top-level object per experiment:
   {"kernel": {..}, "scaling": {..}}. Each experiment rewrites only its
   own section so a kernel rerun does not clobber scaling numbers and
   vice versa. There is no JSON library in the tree; since none of our
   values are strings containing braces, brace matching is a complete
   parser for the file we ourselves write. *)

let read_whole path =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Some s
  end

let contains_substring text sub =
  let n = String.length text and m = String.length sub in
  let rec go i = i + m <= n && (String.sub text i m = sub || go (i + 1)) in
  m = 0 || go 0

let parse_bench_sections text =
  let n = String.length text in
  let sections = ref [] in
  let i = ref 0 in
  while !i < n && text.[!i] <> '{' do incr i done;
  incr i;
  (try
     while !i < n do
       while !i < n && text.[!i] <> '"' && text.[!i] <> '}' do incr i done;
       if !i >= n || text.[!i] = '}' then raise Exit;
       let k0 = !i + 1 in
       i := k0;
       while !i < n && text.[!i] <> '"' do incr i done;
       let key = String.sub text k0 (!i - k0) in
       incr i;
       while !i < n && text.[!i] <> '{' do incr i done;
       if !i >= n then raise Exit;
       let b0 = !i in
       let depth = ref 0 and fin = ref (-1) in
       let j = ref b0 in
       while !fin < 0 && !j < n do
         (match text.[!j] with
         | '{' -> incr depth
         | '}' ->
           decr depth;
           if !depth = 0 then fin := !j
         | _ -> ());
         incr j
       done;
       if !fin < 0 then raise Exit;
       sections := (key, String.sub text b0 (!fin - b0 + 1)) :: !sections;
       i := !fin + 1
     done
   with Exit -> ());
  List.rev !sections

let update_bench_section name body =
  let name = name ^ section_suffix in
  let sections =
    match read_whole bench_json_path with
    | None -> []
    (* The pre-section flat format carried a "bench" marker key; start
       fresh rather than misparse it. *)
    | Some text when contains_substring text "\"bench\":" -> []
    | Some text -> parse_bench_sections text
  in
  let sections =
    if List.mem_assoc name sections then
      List.map (fun (k, v) -> (k, if k = name then body else v)) sections
    else sections @ [ (name, body) ]
  in
  let oc = open_out bench_json_path in
  output_string oc "{\n";
  let last = List.length sections - 1 in
  List.iteri
    (fun idx (k, v) ->
      Printf.fprintf oc "  \"%s\": %s%s\n" k v (if idx < last then "," else ""))
    sections;
  output_string oc "}\n";
  close_out oc;
  Printf.printf "  wrote %s section %S\n\n" bench_json_path name

(* ------------------------------------------------------------------ *)
(* Edit-distance search (§5): how loosely does it track score search?   *)
(* ------------------------------------------------------------------ *)

let edit_exp setup =
  print_endline
    "== Edit-distance tree search (§5, Chavez-Navarro style) vs OASIS score \
     search\n\
    \   (paper: \"edit distance provides a very loose lower-bound on the \
     actual alignment score\")";
  Printf.printf "  %6s %4s %10s %10s %12s %12s\n" "len" "k" "edit-hits"
    "oasis-hits" "missed" "spurious";
  List.iter
    (fun len ->
      let queries =
        List.init
          (min 3 queries_per_length)
          (fun i -> make_query setup ~len ~id:(Printf.sprintf "ed%d_%d" len i))
      in
      List.iter
        (fun k ->
          let edit_total = ref 0 and oasis_total = ref 0 in
          let missed = ref 0 and spurious = ref 0 in
          List.iter
            (fun query ->
              let oasis_hits, _, _ = run_oasis setup ~query ~evalue:20000. in
              let oasis_set =
                List.map (fun h -> h.Oasis.Hit.seq_index) oasis_hits
                |> List.sort_uniq compare
              in
              let edit_hits, _ =
                Oasis.Edit_search.Mem.search ~source:setup.tree ~db:setup.db
                  ~query ~max_diffs:k
              in
              let edit_set =
                List.map (fun h -> h.Oasis.Edit_search.seq_index) edit_hits
                |> List.sort_uniq compare
              in
              edit_total := !edit_total + List.length edit_set;
              oasis_total := !oasis_total + List.length oasis_set;
              missed :=
                !missed
                + List.length
                    (List.filter (fun s -> not (List.mem s edit_set)) oasis_set);
              spurious :=
                !spurious
                + List.length
                    (List.filter (fun s -> not (List.mem s oasis_set)) edit_set))
            queries;
          let nq = float_of_int (List.length queries) in
          Printf.printf "  %6d %4d %10.0f %10.0f %11.0f%% %11.0f%%\n" len k
            (float_of_int !edit_total /. nq)
            (float_of_int !oasis_total /. nq)
            (100. *. float_of_int !missed /. float_of_int (max 1 !oasis_total))
            (100.
            *. float_of_int !spurious
            /. float_of_int (max 1 !edit_total)))
        [ 1; 2; 3 ])
    [ 12; 16 ];
  (* Kernel race: the bit-parallel Myers kernel vs the scalar DP row
     oracle it is specified against, on the shared workload queries.
     Hits and stats are asserted identical before anything is timed —
     a stream mismatch is a correctness bug, not a slow run. *)
  let queries = List.map fst (scored_jobs setup) in
  let k = 2 in
  let reps = if quick then 1 else 3 in
  List.iter
    (fun query ->
      let bp =
        Oasis.Edit_search.Mem.search ~source:setup.tree ~db:setup.db ~query
          ~max_diffs:k
      and dp =
        Oasis.Edit_search.Mem.search_dp ~source:setup.tree ~db:setup.db ~query
          ~max_diffs:k
      in
      if bp <> dp then
        failwith
          (Printf.sprintf
             "edit bench: bit-parallel kernel diverged from the DP oracle on \
              %s"
             (Bioseq.Sequence.id query)))
    queries;
  Printf.printf "  kernel race: hit streams identical on all %d queries (k=%d)\n%!"
    (List.length queries) k;
  let measure search =
    let rows = ref 0 in
    let _, wall =
      time (fun () ->
          for _rep = 1 to reps do
            List.iter
              (fun query ->
                let _, stats =
                  search ~source:setup.tree ~db:setup.db ~query ~max_diffs:k
                in
                rows := !rows + stats.Oasis.Edit_search.rows_computed)
              queries
          done)
    in
    (wall, !rows)
  in
  let dp_wall, dp_rows = measure Oasis.Edit_search.Mem.search_dp in
  let bp_wall, bp_rows = measure Oasis.Edit_search.Mem.search in
  let per_sec n w = float_of_int n /. max 1e-9 w in
  let speedup = per_sec bp_rows bp_wall /. per_sec dp_rows dp_wall in
  Printf.printf "  %-12s %10.3fs  %12.0f rows/s\n" "dp-oracle" dp_wall
    (per_sec dp_rows dp_wall);
  Printf.printf "  %-12s %10.3fs  %12.0f rows/s\n" "bit-parallel" bp_wall
    (per_sec bp_rows bp_wall);
  Printf.printf "  speedup: %.2fx rows/sec\n" speedup;
  update_bench_section "edit"
    (Printf.sprintf
       "{\n\
       \    \"quick\": %b,\n\
       \    \"db_symbols\": %d,\n\
       \    \"queries\": %d,\n\
       \    \"reps\": %d,\n\
       \    \"max_diffs\": %d,\n\
       \    \"hit_streams_identical\": true,\n\
       \    \"dp\": { \"wall_s\": %.6f, \"rows\": %d, \"rows_per_sec\": %.1f },\n\
       \    \"bitparallel\": { \"wall_s\": %.6f, \"rows\": %d, \"rows_per_sec\": %.1f },\n\
       \    \"speedup_rows_per_sec\": %.3f\n\
       \  }"
       quick db_symbols (List.length queries) reps k dp_wall dp_rows
       (per_sec dp_rows dp_wall)
       bp_wall bp_rows
       (per_sec bp_rows bp_wall)
       speedup);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Parallel batch scaling (OCaml 5 domains over the shared tree).       *)
(* ------------------------------------------------------------------ *)

let parallel_exp setup =
  print_endline
    "== Parallel batch search: domains sharing one immutable suffix tree";
  let cores = Domain.recommended_domain_count () in
  Printf.printf
    "  (%d core(s) available to this process; speedups require > 1 — on a \
     single core the\n   domain overhead makes parallel runs slower, shown \
     honestly below)\n"
    cores;
  let queries =
    List.concat_map
      (fun len ->
        List.init
          (min 4 queries_per_length)
          (fun i -> make_query setup ~len ~id:(Printf.sprintf "pb%d_%d" len i)))
      [ 8; 12; 16; 26 ]
  in
  let cfgs =
    List.map
      (fun query ->
        Oasis.Engine.config ~matrix:setup.matrix ~gap:setup.gap
          ~min_score:(min_score_for setup ~query ~evalue:20000.) ())
      queries
  in
  (* All queries share one threshold regime; use the first config for
     the whole batch (Batch.run takes a single config). *)
  let cfg = List.hd cfgs in
  Printf.printf "  %8s %12s %10s\n" "domains" "time(ms)" "speedup";
  let base = ref 0. in
  List.iter
    (fun domains ->
      let _, t =
        time (fun () -> Oasis.Batch.run ~domains ~tree:setup.tree ~db:setup.db ~queries cfg)
      in
      if !base = 0. then base := t;
      Printf.printf "  %8d %12.1f %9.2fx\n" domains (1000. *. t) (!base /. t))
    [ 1; 2; 4 ];
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks.                                           *)
(* ------------------------------------------------------------------ *)

let micro _setup =
  print_endline "== Micro-benchmarks (Bechamel, ns/run)";
  let open Bechamel in
  let rng = Workload.Rng.create ~seed:99 in
  let small_db = Workload.Generate.protein_database rng ~target_symbols:5_000 () in
  let small_tree = Suffix_tree.Ukkonen.build small_db in
  let query =
    Workload.Motif.sample rng ~db:small_db ~len:12 ~mutation_rate:0.1 ~id:"q" ()
  in
  let matrix = Scoring.Matrices.pam30 and gap = Scoring.Gap.linear 10 in
  let target = Bioseq.Database.seq small_db 0 in
  let tests =
    Test.make_grouped ~name:"oasis" ~fmt:"%s/%s"
      [
        Test.make ~name:"sw-score-only"
          (Staged.stage (fun () ->
               ignore (Align.Smith_waterman.score_only ~matrix ~gap ~query ~target)));
        Test.make ~name:"ukkonen-build-5k"
          (Staged.stage (fun () -> ignore (Suffix_tree.Ukkonen.build small_db)));
        Test.make ~name:"mccreight-build-5k"
          (Staged.stage (fun () -> ignore (Suffix_tree.Mccreight.build small_db)));
        Test.make ~name:"partitioned-build-5k"
          (Staged.stage (fun () ->
               ignore (Suffix_tree.Partitioned.build ~prefix_len:1 small_db)));
        Test.make ~name:"suffix-array-build-5k"
          (Staged.stage (fun () -> ignore (Suffix_tree.Suffix_array.build small_db)));
        Test.make ~name:"oasis-search-5k"
          (Staged.stage (fun () ->
               let e =
                 Oasis.Engine.Mem.create ~source:small_tree ~db:small_db ~query
                   (Oasis.Engine.config ~matrix ~gap ~min_score:30 ())
               in
               ignore (Oasis.Engine.Mem.run e)));
        Test.make ~name:"heuristic-vector"
          (Staged.stage (fun () ->
               ignore
                 (Oasis.Heuristic.vector ~style:Oasis.Heuristic.Safe ~matrix ~gap
                    ~query)));
        Test.make ~name:"pqueue-push-pop-1k"
          (Staged.stage (fun () ->
               let q = Oasis.Pqueue.create () in
               for i = 0 to 999 do
                 Oasis.Pqueue.push q ~priority:(i * 7919 mod 1000) i
               done;
               while not (Oasis.Pqueue.is_empty q) do
                 ignore (Oasis.Pqueue.pop q)
               done));
        Test.make ~name:"karlin-estimate-pam30"
          (Staged.stage (fun () ->
               ignore
                 (Scoring.Karlin.estimate ~matrix
                    ~freqs:Scoring.Background.robinson_robinson ())));
      ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg [ instance ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
  List.iter
    (fun (name, v) ->
      match Analyze.OLS.estimates v with
      | Some [ est ] ->
        if est > 1e6 then Printf.printf "  %-32s %12.3f ms/run\n" name (est /. 1e6)
        else Printf.printf "  %-32s %12.0f ns/run\n" name est
      | _ -> Printf.printf "  %-32s (no estimate)\n" name)
    (List.sort compare rows);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Kernel benchmark: pooled engine vs the executable reference, with a  *)
(* machine-readable BENCH_oasis.json for CI trend tracking.             *)
(* ------------------------------------------------------------------ *)


let same_hit (a : Oasis.Hit.t) (b : Oasis.Hit.t) =
  a.Oasis.Hit.seq_index = b.Oasis.Hit.seq_index
  && a.Oasis.Hit.score = b.Oasis.Hit.score
  && a.Oasis.Hit.query_stop = b.Oasis.Hit.query_stop
  && a.Oasis.Hit.target_stop = b.Oasis.Hit.target_stop

let same_stream a b =
  List.length a = List.length b && List.for_all2 same_hit a b

type kernel_side = {
  k_wall : float;
  k_columns : int;
  k_expanded : int;
  k_minor_words : float;
  k_peak_pool_bytes : int;  (** 0 for the reference (it has no pool) *)
  k_pool_reused : int;
}

let kernel setup =
  print_endline
    "== Kernel: pooled engine vs reference implementation (protein workload, \
     E=20000)";
  let jobs = scored_jobs setup in
  let reps = if quick then 1 else 3 in
  Printf.printf "  %d queries x %d reps%s\n%!" (List.length jobs) reps
    (if quick then " (--quick)" else "");
  (* Correctness gate first, unmeasured: the pooled engine must produce
     the reference's hit stream bit-identically — same hits, same order,
     same column counts — on every query of the workload. *)
  List.iter
    (fun (query, min_score) ->
      let cfg =
        Oasis.Engine.config ~matrix:setup.matrix ~gap:setup.gap ~min_score ()
      in
      let e =
        Oasis.Engine.Packed.create
          ~source:(Lazy.force setup.packed)
          ~db:setup.db ~query cfg
      in
      let eh = Oasis.Engine.Packed.run e in
      let r =
        Oasis.Reference.Mem.create ~source:setup.tree ~db:setup.db ~query cfg
      in
      let rh = Oasis.Reference.Mem.run r in
      if not (same_stream eh rh) then
        failwith
          (Printf.sprintf
             "kernel bench: hit stream diverged from reference on %s"
             (Bioseq.Sequence.id query));
      if
        (Oasis.Engine.Packed.counters e).Oasis.Engine.columns
        <> Oasis.Reference.Mem.columns r
      then
        failwith
          (Printf.sprintf "kernel bench: column count diverged on %s"
             (Bioseq.Sequence.id query)))
    jobs;
  Printf.printf "  hit streams identical on all %d queries\n%!" (List.length jobs);
  let b_reused = ref 0 and b_recomputed = ref 0 in
  let measure_engine () =
    let columns = ref 0 and expanded = ref 0 in
    let peak_pool = ref 0 and reused = ref 0 in
    b_reused := 0;
    b_recomputed := 0;
    let words0 = Gc.minor_words () in
    let t0 = Unix.gettimeofday () in
    for _rep = 1 to reps do
      List.iter
        (fun (query, min_score) ->
          let cfg =
            Oasis.Engine.config ~matrix:setup.matrix ~gap:setup.gap ~min_score ()
          in
          let e =
            Oasis.Engine.Packed.create
              ~source:(Lazy.force setup.packed)
              ~db:setup.db ~query cfg
          in
          ignore (Oasis.Engine.Packed.run e);
          let c = Oasis.Engine.Packed.counters e in
          columns := !columns + c.Oasis.Engine.columns;
          expanded := !expanded + c.Oasis.Engine.nodes_expanded;
          peak_pool := max !peak_pool c.Oasis.Engine.pool_peak_bytes;
          reused := !reused + c.Oasis.Engine.pool_reused;
          let br, bc = Oasis.Engine.Packed.bound_stats e in
          b_reused := !b_reused + br;
          b_recomputed := !b_recomputed + bc)
        jobs
    done;
    {
      k_wall = Unix.gettimeofday () -. t0;
      k_columns = !columns;
      k_expanded = !expanded;
      k_minor_words = Gc.minor_words () -. words0;
      k_peak_pool_bytes = !peak_pool;
      k_pool_reused = !reused;
    }
  in
  let measure_reference () =
    let columns = ref 0 and expanded = ref 0 in
    let words0 = Gc.minor_words () in
    let t0 = Unix.gettimeofday () in
    for _rep = 1 to reps do
      List.iter
        (fun (query, min_score) ->
          let cfg =
            Oasis.Engine.config ~matrix:setup.matrix ~gap:setup.gap ~min_score ()
          in
          let r =
            Oasis.Reference.Mem.create ~source:setup.tree ~db:setup.db ~query
              cfg
          in
          ignore (Oasis.Reference.Mem.run r);
          columns := !columns + Oasis.Reference.Mem.columns r;
          expanded := !expanded + Oasis.Reference.Mem.nodes_expanded r)
        jobs
    done;
    {
      k_wall = Unix.gettimeofday () -. t0;
      k_columns = !columns;
      k_expanded = !expanded;
      k_minor_words = Gc.minor_words () -. words0;
      k_peak_pool_bytes = 0;
      k_pool_reused = 0;
    }
  in
  (* Interleave to share any JIT-less warmup (page cache, branch state)
     fairly; reference first so the engine cannot benefit from running
     last either. *)
  let reference = measure_reference () in
  let engine = measure_engine () in
  let per_sec n wall = float_of_int n /. max 1e-9 wall in
  let wpc side = side.k_minor_words /. float_of_int (max 1 side.k_columns) in
  let speedup =
    per_sec engine.k_columns engine.k_wall
    /. per_sec reference.k_columns reference.k_wall
  in
  let words_ratio = wpc reference /. max 1e-9 (wpc engine) in
  let row name side =
    Printf.printf
      "  %-9s %10.3fs  %12.0f cols/s  %11.0f nodes/s  %8.2f minor words/col\n"
      name side.k_wall
      (per_sec side.k_columns side.k_wall)
      (per_sec side.k_expanded side.k_wall)
      (wpc side)
  in
  row "reference" reference;
  row "engine" engine;
  Printf.printf
    "  speedup: %.2fx columns/sec   allocation: %.1fx fewer minor words/col   \
     peak pool: %d bytes\n"
    speedup words_ratio engine.k_peak_pool_bytes;
  Printf.printf
    "  pre-DP bound: %d arcs reused (%.1f%%), %d recomputed\n"
    !b_reused
    (100.
    *. float_of_int !b_reused
    /. float_of_int (max 1 (!b_reused + !b_recomputed)))
    !b_recomputed;
  let side name s =
    Printf.sprintf
      "    \"%s\": {\n\
      \      \"wall_s\": %.6f,\n\
      \      \"columns\": %d,\n\
      \      \"columns_per_sec\": %.1f,\n\
      \      \"nodes_expanded\": %d,\n\
      \      \"nodes_expanded_per_sec\": %.1f,\n\
      \      \"minor_words\": %.0f,\n\
      \      \"minor_words_per_column\": %.3f,\n\
      \      \"peak_pool_bytes\": %d,\n\
      \      \"pool_reused\": %d\n\
      \    }"
      name s.k_wall s.k_columns
      (per_sec s.k_columns s.k_wall)
      s.k_expanded
      (per_sec s.k_expanded s.k_wall)
      s.k_minor_words (wpc s) s.k_peak_pool_bytes s.k_pool_reused
  in
  update_bench_section "kernel"
    (Printf.sprintf
       "{\n\
       \    \"quick\": %b,\n\
       \    \"db_symbols\": %d,\n\
       \    \"queries\": %d,\n\
       \    \"reps\": %d,\n\
       \    \"seed\": %d,\n\
       \    \"hit_streams_identical\": true,\n\
        %s,\n\
        %s,\n\
       \    \"bound_reused\": %d,\n\
       \    \"bound_recomputed\": %d,\n\
       \    \"speedup_columns_per_sec\": %.3f,\n\
       \    \"minor_words_reduction\": %.2f\n\
       \  }"
       quick db_symbols (List.length jobs) reps seed
       (side "reference" reference)
       (side "engine" engine)
       !b_reused !b_recomputed speedup words_ratio)

(* ------------------------------------------------------------------ *)
(* Obs: instrumentation cost on the kernel workload. Hooks off is the  *)
(* shipped default (every hook site is one pointer compare) and gates  *)
(* against the committed kernel baseline; hooks on attaches one        *)
(* accumulating Instrument with no trace sink and records the phase    *)
(* breakdown the timer saw.                                            *)
(* ------------------------------------------------------------------ *)

let obs_exp setup =
  print_endline
    "== Obs: instrumentation overhead (kernel workload over the packed \
     source; hooks off vs an attached Instrument, no trace sink)";
  let jobs = scored_jobs setup in
  let reps = if quick then 1 else 3 in
  Printf.printf "  %d queries x %d reps%s\n%!" (List.length jobs) reps
    (if quick then " (--quick)" else "");
  let measure inst =
    let columns = ref 0 in
    let t0 = Unix.gettimeofday () in
    for _rep = 1 to reps do
      List.iter
        (fun (query, min_score) ->
          let cfg =
            Oasis.Engine.config ~matrix:setup.matrix ~gap:setup.gap ~min_score
              ()
          in
          let e =
            Oasis.Engine.Packed.create
              ~source:(Lazy.force setup.packed)
              ~db:setup.db ~query cfg
          in
          Oasis.Engine.Packed.set_instrument e inst;
          ignore (Oasis.Engine.Packed.run e);
          columns :=
            !columns + (Oasis.Engine.Packed.counters e).Oasis.Engine.columns)
        jobs
    done;
    (Unix.gettimeofday () -. t0, !columns)
  in
  (* Hooks off first so it cannot benefit from running last. *)
  let off_wall, off_columns = measure None in
  let inst = Oasis.Instrument.create () in
  let on_wall, on_columns = measure (Some inst) in
  let cps columns wall = float_of_int columns /. max 1e-9 wall in
  let off_cps = cps off_columns off_wall and on_cps = cps on_columns on_wall in
  let overhead_pct = (off_cps /. max 1e-9 on_cps -. 1.) *. 100. in
  Printf.printf
    "  hooks off %10.3fs  %12.0f cols/s\n\
    \  hooks on  %10.3fs  %12.0f cols/s   (%.1f%% overhead)\n"
    off_wall off_cps on_wall on_cps overhead_pct;
  let timer = inst.Oasis.Instrument.timer in
  let timer_total = Obs.Timer.total timer in
  let phases = Obs.Timer.phases timer in
  List.iter
    (fun (name, s) ->
      Printf.printf "    phase %-8s %10.3fs  %5.1f%%\n" name s
        (100. *. s /. max 1e-9 timer_total))
    (List.sort (fun (_, a) (_, b) -> compare b a) phases);
  let phases_json =
    String.concat ",\n"
      (List.map
         (fun (name, s) ->
           Printf.sprintf
             "      \"%s\": { \"seconds\": %.6f, \"fraction\": %.4f }" name s
             (s /. max 1e-9 timer_total))
         phases)
  in
  update_bench_section "obs"
    (Printf.sprintf
       "{\n\
       \    \"quick\": %b,\n\
       \    \"db_symbols\": %d,\n\
       \    \"queries\": %d,\n\
       \    \"reps\": %d,\n\
       \    \"seed\": %d,\n\
       \    \"hooks_off\": { \"wall_s\": %.6f, \"columns\": %d, \
        \"columns_per_sec\": %.1f },\n\
       \    \"hooks_on\": { \"wall_s\": %.6f, \"columns\": %d, \
        \"columns_per_sec\": %.1f },\n\
       \    \"overhead_pct\": %.2f,\n\
       \    \"phases\": {\n\
        %s\n\
       \    }\n\
       \  }"
       quick db_symbols (List.length jobs) reps seed off_wall off_columns
       off_cps on_wall on_columns on_cps overhead_pct phases_json)

(* ------------------------------------------------------------------ *)
(* Filter: the q-gram tier + BLAST cutoff seeding (DESIGN.md §2k) vs   *)
(* the plain engine on the kernel workload, as a top-K consumer. The   *)
(* gate is bit-identity of the first K hits per query; the headline    *)
(* metric is the fraction of DP columns the combined tier removes.     *)
(* ------------------------------------------------------------------ *)

let filter_exp setup =
  let top_k = 10 in
  Printf.printf
    "== Filter: q-gram tier + BLAST-seeded cutoff vs plain engine (protein \
     workload, top-%d consumer)\n"
    top_k;
  let jobs = scored_jobs setup in
  Printf.printf "  %d queries%s\n%!" (List.length jobs)
    (if quick then " (--quick)" else "");
  let profile, profile_wall =
    time (fun () -> Quasar.Profile.build ~db:setup.db ~tree:setup.tree ())
  in
  Printf.printf "  profile: %d nodes, %d bytes, built in %.3fs\n%!"
    (Quasar.Profile.num_nodes profile)
    (Quasar.Profile.bytes profile)
    profile_wall;
  let bcfg =
    Blast.Search.default_protein ~matrix:setup.matrix ~gap:setup.gap
      ~params:setup.params ()
  in
  let rec take n = function
    | x :: tl when n > 0 -> x :: take (n - 1) tl
    | _ -> []
  in
  let base_columns = ref 0
  and tier_columns = ref 0
  and seed_wall = ref 0.
  and seeds_raised = ref 0
  and ft_tested = ref 0
  and ft_coarse = ref 0
  and ft_refined = ref 0
  and base_wall = ref 0.
  and tier_wall = ref 0. in
  List.iter
    (fun (query, min_score) ->
      let cfg =
        Oasis.Engine.config ~matrix:setup.matrix ~gap:setup.gap ~min_score ()
      in
      let (base_hits, base_cols), bw =
        time (fun () ->
            let e =
              Oasis.Engine.Packed.create
                ~source:(Lazy.force setup.packed)
                ~db:setup.db ~query cfg
            in
            let h = Oasis.Engine.Packed.run e in
            (h, (Oasis.Engine.Packed.counters e).Oasis.Engine.columns))
      in
      base_wall := !base_wall +. bw;
      base_columns := !base_columns + base_cols;
      let seeded, sw =
        time (fun () ->
            Blast.Seed.min_score bcfg ~query ~db:setup.db ~k:top_k
              ~floor:min_score)
      in
      seed_wall := !seed_wall +. sw;
      if seeded > min_score then incr seeds_raised;
      let scfg =
        Oasis.Engine.config ~matrix:setup.matrix ~gap:setup.gap
          ~min_score:seeded ()
      in
      let (tier_hits, tier_cols, stats), tw =
        time (fun () ->
            let e =
              Oasis.Engine.Packed.create ~filter:profile
                ~source:(Lazy.force setup.packed)
                ~db:setup.db ~query scfg
            in
            let h = Oasis.Engine.Packed.run e in
            ( h,
              (Oasis.Engine.Packed.counters e).Oasis.Engine.columns,
              Oasis.Engine.Packed.filter_stats e ))
      in
      tier_wall := !tier_wall +. tw;
      tier_columns := !tier_columns + tier_cols;
      let t, c, r = stats in
      ft_tested := !ft_tested + t;
      ft_coarse := !ft_coarse + c;
      ft_refined := !ft_refined + r;
      (* The gate: a top-K consumer must not observe the tier at all. *)
      if not (same_stream (take top_k base_hits) (take top_k tier_hits)) then
        failwith
          (Printf.sprintf
             "filter bench: top-%d stream diverged on %s (seed %d -> %d)"
             top_k (Bioseq.Sequence.id query) min_score seeded))
    jobs;
  Printf.printf "  top-%d hit streams identical on all %d queries\n" top_k
    (List.length jobs);
  let saved_pct =
    100.
    *. float_of_int (!base_columns - !tier_columns)
    /. float_of_int (max 1 !base_columns)
  in
  Printf.printf
    "  columns: plain %d -> tier %d  (%.1f%% settled pre-DP)\n\
    \  seeds raised on %d/%d queries (BLAST pass %.3fs total)\n\
    \  q-gram settles: %d tested, %d coarse, %d refined\n\
    \  wall: plain %.3fs -> seeded+filtered %.3fs (+%.3fs seeding)\n%!"
    !base_columns !tier_columns saved_pct !seeds_raised (List.length jobs)
    !seed_wall !ft_tested !ft_coarse !ft_refined !base_wall !tier_wall
    !seed_wall;
  update_bench_section "filter"
    (Printf.sprintf
       "{\n\
       \    \"quick\": %b,\n\
       \    \"db_symbols\": %d,\n\
       \    \"queries\": %d,\n\
       \    \"seed\": %d,\n\
       \    \"top_k\": %d,\n\
       \    \"hit_streams_identical\": true,\n\
       \    \"profile_nodes\": %d,\n\
       \    \"profile_bytes\": %d,\n\
       \    \"profile_build_s\": %.6f,\n\
       \    \"baseline_columns\": %d,\n\
       \    \"tier_columns\": %d,\n\
       \    \"columns_saved_pct\": %.2f,\n\
       \    \"seeds_raised\": %d,\n\
       \    \"seed_wall_s\": %.6f,\n\
       \    \"filter_tested\": %d,\n\
       \    \"filter_settled_coarse\": %d,\n\
       \    \"filter_settled_refined\": %d,\n\
       \    \"baseline_wall_s\": %.6f,\n\
       \    \"tier_wall_s\": %.6f\n\
       \  }"
       quick db_symbols (List.length jobs) seed top_k
       (Quasar.Profile.num_nodes profile)
       (Quasar.Profile.bytes profile)
       profile_wall !base_columns !tier_columns saved_pct !seeds_raised
       !seed_wall !ft_tested !ft_coarse !ft_refined !base_wall !tier_wall)

(* ------------------------------------------------------------------ *)
(* Disk: the same workload against the Mem and Disk sources, cold and   *)
(* warm pool, both leaf layouts — the mem/disk gap the storage fast     *)
(* path exists to close.                                                *)
(* ------------------------------------------------------------------ *)

type disk_side = {
  d_wall : float;
  d_columns : int;
  d_minor_words : float;
  d_io_hits : int;
  d_io_misses : int;
}

let disk_exp setup =
  print_endline
    "== Disk: Mem vs Disk engine on one workload (pool holds the working \
     set; cold = pool dropped before every query, warm = steady state)";
  let block_size = 2048 in
  (* Storage-bound subset: at these query lengths the DP column is a few
     nanoseconds, so node decoding and pool accesses — the costs this
     experiment exists to track — dominate the wall clock instead of
     being noise under the kernel's compute. The kernel experiment
     covers the compute-bound end. *)
  let jobs = scored_jobs ~max_len:12 setup in
  let reps = if quick then 1 else 3 in
  Printf.printf "  %d queries x %d reps%s\n%!" (List.length jobs) reps
    (if quick then " (--quick)" else "");
  (* Mem-side reference streams: the correctness gate for every layout. *)
  let mem_streams =
    List.map
      (fun (query, min_score) ->
        let cfg =
          Oasis.Engine.config ~matrix:setup.matrix ~gap:setup.gap ~min_score ()
        in
        Oasis.Engine.Mem.run
          (Oasis.Engine.Mem.create ~source:setup.tree ~db:setup.db ~query cfg))
      jobs
  in
  let measure_mem () =
    let columns = ref 0 in
    let words0 = Gc.minor_words () in
    let t0 = Unix.gettimeofday () in
    for _rep = 1 to reps do
      List.iter
        (fun (query, min_score) ->
          let cfg =
            Oasis.Engine.config ~matrix:setup.matrix ~gap:setup.gap ~min_score ()
          in
          let e =
            Oasis.Engine.Mem.create ~source:setup.tree ~db:setup.db ~query cfg
          in
          ignore (Oasis.Engine.Mem.run e);
          columns := !columns + (Oasis.Engine.Mem.counters e).Oasis.Engine.columns)
        jobs
    done;
    {
      d_wall = Unix.gettimeofday () -. t0;
      d_columns = !columns;
      d_minor_words = Gc.minor_words () -. words0;
      d_io_hits = 0;
      d_io_misses = 0;
    }
  in
  let open_layout layout =
    let symbols = Storage.Device.in_memory ()
    and internal = Storage.Device.in_memory ()
    and leaves = Storage.Device.in_memory () in
    Storage.Disk_tree.write ~layout setup.tree ~symbols ~internal ~leaves;
    let total_bytes =
      Storage.Device.length symbols + Storage.Device.length internal
      + Storage.Device.length leaves
    in
    (* The pool holds the whole working set: the interesting number is
       the CPU cost of paged access, not eviction churn (fig7 covers
       that). *)
    let capacity = (total_bytes / block_size) + 8 in
    let pool = Storage.Buffer_pool.create ~block_size ~capacity in
    ( Storage.Disk_tree.open_
        ~alphabet:(Bioseq.Database.alphabet setup.db)
        ~pool ~symbols ~internal ~leaves (),
      pool )
  in
  let run_disk dt query min_score =
    let cfg =
      Oasis.Engine.config ~matrix:setup.matrix ~gap:setup.gap ~min_score ()
    in
    let e = Oasis.Engine.Disk.create ~source:dt ~db:setup.db ~query cfg in
    let hits = Oasis.Engine.Disk.run e in
    (hits, Oasis.Engine.Disk.counters e)
  in
  let measure_disk dt pool ~cold =
    let columns = ref 0 in
    let acc_h = ref 0 and acc_m = ref 0 in
    (* [drop_all] zeroes the per-file counters along with the cache, so
       cold mode harvests the stats after every query. *)
    let harvest () =
      List.iter
        (fun comp ->
          let s = Storage.Disk_tree.component_stats dt comp in
          acc_h := !acc_h + s.Storage.Buffer_pool.hits;
          acc_m := !acc_m + s.Storage.Buffer_pool.misses)
        [ Storage.Disk_tree.Symbols; Internal_nodes; Leaves ];
      Storage.Buffer_pool.reset_stats pool
    in
    let words0 = Gc.minor_words () in
    let t0 = Unix.gettimeofday () in
    for _rep = 1 to reps do
      List.iter
        (fun (query, min_score) ->
          if cold then Storage.Buffer_pool.drop_all pool;
          let _, c = run_disk dt query min_score in
          columns := !columns + c.Oasis.Engine.columns;
          if cold then harvest ())
        jobs
    done;
    let wall = Unix.gettimeofday () -. t0 in
    if not cold then harvest ();
    {
      d_wall = wall;
      d_columns = !columns;
      d_minor_words = Gc.minor_words () -. words0;
      d_io_hits = !acc_h;
      d_io_misses = !acc_m;
    }
  in
  let layouts =
    [
      ("position_indexed", Storage.Disk_tree.Position_indexed);
      ("clustered", Storage.Disk_tree.Clustered);
    ]
  in
  (* Correctness gate first, unmeasured: the disk engine must reproduce
     the mem engine's hit stream bit-identically under both layouts. *)
  List.iter
    (fun (lname, layout) ->
      let dt, _pool = open_layout layout in
      List.iter2
        (fun (query, min_score) mem_hits ->
          let hits, _ = run_disk dt query min_score in
          if not (same_stream hits mem_hits) then
            failwith
              (Printf.sprintf
                 "disk bench: %s hit stream diverged from Mem on %s" lname
                 (Bioseq.Sequence.id query)))
        jobs mem_streams)
    layouts;
  Printf.printf "  hit streams identical (Mem = Disk) on all %d queries x %d \
                 layouts\n%!"
    (List.length jobs) (List.length layouts);
  let mem = measure_mem () in
  let per_sec s = float_of_int s.d_columns /. max 1e-9 s.d_wall in
  let wpc s = s.d_minor_words /. float_of_int (max 1 s.d_columns) in
  let row name s =
    Printf.printf
      "  %-28s %9.3fs  %12.0f cols/s  %8.2f minor words/col  %9d hits %7d \
       misses\n"
      name s.d_wall (per_sec s) (wpc s) s.d_io_hits s.d_io_misses
  in
  row "mem" mem;
  let sides =
    List.map
      (fun (lname, layout) ->
        let dt, pool = open_layout layout in
        (* Warm the pool (and branch state) once, unmeasured. *)
        List.iter
          (fun (query, min_score) -> ignore (run_disk dt query min_score))
          jobs;
        Storage.Buffer_pool.reset_stats pool;
        let warm = measure_disk dt pool ~cold:false in
        row (lname ^ " warm") warm;
        Storage.Buffer_pool.reset_stats pool;
        let cold = measure_disk dt pool ~cold:true in
        row (lname ^ " cold") cold;
        (lname, warm, cold))
      layouts
  in
  let _, pi_warm, _ = List.hd sides in
  Printf.printf
    "  mem/disk gap (warm, position-indexed): %.2fx columns/sec, %.1fx minor \
     words/col\n"
    (per_sec mem /. per_sec pi_warm)
    (wpc pi_warm /. max 1e-9 (wpc mem));
  let side_json name s =
    Printf.sprintf
      "    \"%s\": {\n\
      \      \"wall_s\": %.6f,\n\
      \      \"columns\": %d,\n\
      \      \"columns_per_sec\": %.1f,\n\
      \      \"minor_words\": %.0f,\n\
      \      \"minor_words_per_column\": %.3f,\n\
      \      \"pool_hits\": %d,\n\
      \      \"pool_misses\": %d\n\
      \    }"
      name s.d_wall s.d_columns (per_sec s) s.d_minor_words (wpc s) s.d_io_hits
      s.d_io_misses
  in
  let layout_json =
    List.concat_map
      (fun (lname, warm, cold) ->
        [ side_json (lname ^ "_warm") warm; side_json (lname ^ "_cold") cold ])
      sides
  in
  update_bench_section "disk"
    (Printf.sprintf
       "{\n\
       \    \"quick\": %b,\n\
       \    \"db_symbols\": %d,\n\
       \    \"queries\": %d,\n\
       \    \"reps\": %d,\n\
       \    \"seed\": %d,\n\
       \    \"hit_streams_identical\": true,\n\
        %s,\n\
       %s,\n\
       \    \"disk_vs_mem_warm\": %.3f\n\
       \  }"
       quick db_symbols (List.length jobs) reps seed
       (side_json "mem" mem)
       (String.concat ",\n" layout_json)
       (per_sec pi_warm /. max 1e-9 (per_sec mem)))

(* ------------------------------------------------------------------ *)
(* Batch: the fused k-query kernel vs k independent engines, in memory *)
(* and against a warm disk tree. The correctness gate is per-query     *)
(* bit-identity with the single engine; the metric is aggregate        *)
(* virtual columns served per second — every query's single-engine     *)
(* column count, delivered by however few physical DP sweeps and node  *)
(* decodes the fused traversal needs.                                  *)
(* ------------------------------------------------------------------ *)

type batch_side = {
  b_wall : float;
  b_virtual : int;  (** sum over queries of single-engine column counts *)
  b_physical : int;  (** DP column sweeps actually executed *)
  b_expanded : int;  (** physical node expansions *)
  b_minor_words : float;
}

let batch_exp setup =
  print_endline
    "== Batch: fused k-query kernel vs independent engines (mem + warm disk)";
  (* A 20-query mutation scan: one sampled probe, twenty point-mutated
     variants — the multi-query-service batch shape the fused kernel
     targets (screen a motif's variants against the database in one
     pass). Related queries keep their lanes together down the shared
     parts of the tree, which is where fusion pays: bit-identity pins
     the fused kernel to the same DP lane-cells as k single engines, so
     its win is the per-(node, column) work it shares — node decode,
     child enumeration, page probes, arc symbol fetches. A batch of
     unrelated queries diverges after the first column or two and
     shares almost nothing; the `batch` CLI handles that fine, but it
     is not the workload this experiment sizes. *)
  let base = make_query setup ~len:16 ~id:"bq_base" in
  let queries =
    List.init 20 (fun i ->
        let v = Workload.Motif.mutate setup.rng ~rate:0.02 base in
        Bioseq.Sequence.of_codes
          ~alphabet:(Bioseq.Sequence.alphabet base)
          ~id:(Printf.sprintf "bq%d" i) (Bioseq.Sequence.codes v))
  in
  let qarr = Array.of_list queries in
  let nq = Array.length qarr in
  let min_score =
    min_score_for setup ~query:(List.hd queries) ~evalue:20000.
  in
  let cfg =
    Oasis.Engine.config ~matrix:setup.matrix ~gap:setup.gap ~min_score ()
  in
  let reps = if quick then 1 else 5 in
  Printf.printf "  %d queries x %d reps, min_score %d%s\n%!" nq reps min_score
    (if quick then " (--quick)" else "");
  (* Single-engine reference streams: the per-query identity gate. *)
  let ref_streams =
    Array.map
      (fun query ->
        let e =
          Oasis.Engine.Mem.create ~source:setup.tree ~db:setup.db ~query cfg
        in
        let hits = Oasis.Engine.Mem.run e in
        (hits, (Oasis.Engine.Mem.counters e).Oasis.Engine.columns))
      qarr
  in
  let block_size = 2048 in
  let open_disk () =
    let symbols = Storage.Device.in_memory ()
    and internal = Storage.Device.in_memory ()
    and leaves = Storage.Device.in_memory () in
    Storage.Disk_tree.write ~layout:Storage.Disk_tree.Position_indexed
      setup.tree ~symbols ~internal ~leaves;
    let total_bytes =
      Storage.Device.length symbols + Storage.Device.length internal
      + Storage.Device.length leaves
    in
    let pool =
      Storage.Buffer_pool.create ~block_size
        ~capacity:((total_bytes / block_size) + 8)
    in
    Storage.Disk_tree.open_
      ~alphabet:(Bioseq.Database.alphabet setup.db)
      ~pool ~symbols ~internal ~leaves ()
  in
  let dt = open_disk () in
  (* Correctness gate first, unmeasured: both fused backends must
     reproduce every query's single-engine stream — and serve exactly
     its single-engine column count — before anything is timed. *)
  let gate refs name run_fused =
    let hits, cols = run_fused () in
    Array.iteri
      (fun q (ref_hits, ref_cols) ->
        if not (same_stream hits.(q) ref_hits) then
          failwith
            (Printf.sprintf "batch bench: %s stream diverged on %s" name
               (Bioseq.Sequence.id qarr.(q)));
        if cols.(q) <> ref_cols then
          failwith
            (Printf.sprintf "batch bench: %s virtual columns diverged on %s"
               name
               (Bioseq.Sequence.id qarr.(q))))
      refs
  in
  let fused_mem () =
    let k =
      Oasis.Batch_kernel.Mem.create ~source:setup.tree ~db:setup.db
        ~queries:qarr cfg
    in
    Oasis.Batch_kernel.Mem.run k;
    ( Array.init nq (Oasis.Batch_kernel.Mem.hits k),
      Array.init nq (fun q ->
          (Oasis.Batch_kernel.Mem.counters k q).Oasis.Engine.columns),
      Oasis.Batch_kernel.Mem.physical_columns k,
      Oasis.Batch_kernel.Mem.physical_expansions k,
      Oasis.Batch_kernel.Mem.retired k )
  in
  let fused_disk () =
    let k =
      Oasis.Batch_kernel.Disk.create ~source:dt ~db:setup.db ~queries:qarr cfg
    in
    Oasis.Batch_kernel.Disk.run k;
    ( Array.init nq (Oasis.Batch_kernel.Disk.hits k),
      Array.init nq (fun q ->
          (Oasis.Batch_kernel.Disk.counters k q).Oasis.Engine.columns),
      Oasis.Batch_kernel.Disk.physical_columns k,
      Oasis.Batch_kernel.Disk.physical_expansions k,
      Oasis.Batch_kernel.Disk.retired k )
  in
  gate ref_streams "fused mem" (fun () ->
      let h, c, _, _, _ = fused_mem () in
      (h, c));
  (* The disk single engine can pay a column more or less than the mem
     one on a leaf-arc boundary (same hit stream); each fused backend is
     gated against {e its own} backend's single engine, which is the
     bit-identity contract. *)
  let disk_ref_streams =
    Array.map
      (fun query ->
        let e = Oasis.Engine.Disk.create ~source:dt ~db:setup.db ~query cfg in
        let hits = Oasis.Engine.Disk.run e in
        (hits, (Oasis.Engine.Disk.counters e).Oasis.Engine.columns))
      qarr
  in
  Array.iteri
    (fun q (mem_hits, _) ->
      let disk_hits, _ = disk_ref_streams.(q) in
      if not (same_stream disk_hits mem_hits) then
        failwith
          (Printf.sprintf "batch bench: disk engine stream differs from mem on %s"
             (Bioseq.Sequence.id qarr.(q))))
    ref_streams;
  gate disk_ref_streams "fused disk" (fun () ->
      let h, c, _, _, _ = fused_disk () in
      (h, c));
  Printf.printf
    "  fused streams identical to single-engine on all %d queries (mem and \
     disk)\n%!"
    nq;
  let measure run =
    (* One unmeasured pass warms the pool and branch state. Each rep is
       deterministic (identical counters); report the best rep's wall so
       scheduler noise doesn't swamp a ~0.1s measurement. *)
    ignore (run ());
    let words0 = Gc.minor_words () in
    let wall = ref infinity in
    let virt = ref 0 and phys = ref 0 and exp = ref 0 in
    for _rep = 1 to reps do
      let t0 = Unix.gettimeofday () in
      let v, p, e = run () in
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !wall then wall := dt;
      virt := v;
      phys := p;
      exp := e
    done;
    {
      b_wall = !wall;
      b_virtual = !virt;
      b_physical = !phys;
      b_expanded = !exp;
      b_minor_words = (Gc.minor_words () -. words0) /. float_of_int reps;
    }
  in
  let independent create run counters =
    let virt = ref 0 and exp = ref 0 in
    Array.iter
      (fun query ->
        let e = create query in
        ignore (run e);
        let c : Oasis.Engine.counters = counters e in
        virt := !virt + c.Oasis.Engine.columns;
        exp := !exp + c.Oasis.Engine.nodes_expanded)
      qarr;
    (!virt, !virt, !exp)
  in
  let mem_ind =
    measure (fun () ->
        independent
          (fun query ->
            Oasis.Engine.Mem.create ~source:setup.tree ~db:setup.db ~query cfg)
          Oasis.Engine.Mem.run Oasis.Engine.Mem.counters)
  in
  let retired = ref 0 in
  let mem_fused =
    measure (fun () ->
        let _, cols, phys, exp, ret = fused_mem () in
        retired := ret;
        (Array.fold_left ( + ) 0 cols, phys, exp))
  in
  let disk_ind =
    measure (fun () ->
        independent
          (fun query ->
            Oasis.Engine.Disk.create ~source:dt ~db:setup.db ~query cfg)
          Oasis.Engine.Disk.run Oasis.Engine.Disk.counters)
  in
  let disk_fused =
    measure (fun () ->
        let _, cols, phys, exp, ret = fused_disk () in
        retired := ret;
        (Array.fold_left ( + ) 0 cols, phys, exp))
  in
  let per_sec s = float_of_int s.b_virtual /. max 1e-9 s.b_wall in
  let row name s =
    Printf.printf
      "  %-18s %9.3fs  %12.0f virt cols/s  %10d phys cols  %8d expansions\n"
      name s.b_wall (per_sec s) s.b_physical s.b_expanded
  in
  row "mem independent" mem_ind;
  row "mem fused" mem_fused;
  row "disk independent" disk_ind;
  row "disk fused" disk_fused;
  let mem_speedup = per_sec mem_fused /. max 1e-9 (per_sec mem_ind) in
  let disk_speedup = per_sec disk_fused /. max 1e-9 (per_sec disk_ind) in
  Printf.printf
    "  fused speedup: %.2fx (mem), %.2fx (warm disk)   physical sweeps: \
     %.2fx fewer   lane retirements: %d\n"
    mem_speedup disk_speedup
    (float_of_int mem_fused.b_virtual /. float_of_int (max 1 mem_fused.b_physical))
    !retired;
  let side name s =
    Printf.sprintf
      "    \"%s\": {\n\
      \      \"wall_s\": %.6f,\n\
      \      \"virtual_columns\": %d,\n\
      \      \"virtual_columns_per_sec\": %.1f,\n\
      \      \"physical_columns\": %d,\n\
      \      \"nodes_expanded\": %d,\n\
      \      \"minor_words\": %.0f\n\
      \    }"
      name s.b_wall s.b_virtual (per_sec s) s.b_physical s.b_expanded
      s.b_minor_words
  in
  update_bench_section "batch"
    (Printf.sprintf
       "{\n\
       \    \"quick\": %b,\n\
       \    \"db_symbols\": %d,\n\
       \    \"queries\": %d,\n\
       \    \"batch_size\": %d,\n\
       \    \"reps\": %d,\n\
       \    \"seed\": %d,\n\
       \    \"min_score\": %d,\n\
       \    \"hit_streams_identical\": true,\n\
        %s,\n\
        %s,\n\
        %s,\n\
        %s,\n\
       \    \"mem_fused_speedup\": %.3f,\n\
       \    \"disk_warm_fused_speedup\": %.3f,\n\
       \    \"physical_sweep_reduction\": %.3f,\n\
       \    \"lane_retirements\": %d\n\
       \  }"
       quick db_symbols nq nq reps seed min_score
       (side "mem_independent" mem_ind)
       (side "mem_fused" mem_fused)
       (side "disk_warm_independent" disk_ind)
       (side "disk_warm_fused" disk_fused)
       mem_speedup disk_speedup
       (float_of_int mem_fused.b_virtual
       /. float_of_int (max 1 mem_fused.b_physical))
       !retired)

(* ------------------------------------------------------------------ *)
(* Scaling: sharded multicore search over database partitions.          *)
(* ------------------------------------------------------------------ *)

let scaling setup =
  print_endline
    "== Scaling: sharded search (one engine per database partition, \
     order-preserving merge)";
  let cores = Domain.recommended_domain_count () in
  Printf.printf
    "  (%d core(s) available; tree build per shard is outside the timed \
     region)\n"
    cores;
  let queries =
    List.concat_map
      (fun len ->
        List.init
          (min 3 queries_per_length)
          (fun i -> make_query setup ~len ~id:(Printf.sprintf "sc%d_%d" len i)))
      [ 8; 12; 16; 26 ]
  in
  let jobs =
    List.map (fun q -> (q, min_score_for setup ~query:q ~evalue:20000.)) queries
  in
  (* Plain-engine streams: the equality gate every shard count must
     match (exactly at K=1; modulo the documented tie effects above —
     same (sequence, score) sets per score level — at K>1). *)
  let ref_streams =
    List.map
      (fun (query, min_score) ->
        let cfg =
          Oasis.Engine.config ~matrix:setup.matrix ~gap:setup.gap ~min_score ()
        in
        Oasis.Engine.Mem.run
          (Oasis.Engine.Mem.create ~source:setup.tree ~db:setup.db ~query cfg))
      jobs
  in
  let canon hits =
    List.sort compare
      (List.map (fun h -> (h.Oasis.Hit.seq_index, h.Oasis.Hit.score)) hits)
  in
  let nonincreasing hits =
    let rec go = function
      | (a : Oasis.Hit.t) :: (b :: _ as rest) ->
        a.Oasis.Hit.score >= b.Oasis.Hit.score && go rest
      | _ -> true
    in
    go hits
  in
  let shard_counts = [ 1; 2; 4 ] in
  let rows =
    List.map
      (fun k ->
        let pieces = Oasis.Shard.plan ~shards:k setup.db in
        let trees = Oasis.Shard.build_trees pieces in
        let sources =
          Array.map2
            (fun source piece -> { Oasis.Parallel.Mem.source; piece })
            trees pieces
        in
        let pool = Oasis.Domain_pool.create ~domains:(min k cores) in
        let columns = ref 0 in
        let (), wall =
          time (fun () ->
              List.iter2
                (fun (query, min_score) ref_hits ->
                  let cfg =
                    Oasis.Engine.config ~matrix:setup.matrix ~gap:setup.gap
                      ~min_score ()
                  in
                  let t =
                    Oasis.Parallel.Mem.create ~pool ~shards:sources ~query cfg
                  in
                  let hits = Oasis.Parallel.Mem.run t in
                  columns :=
                    !columns
                    + (Oasis.Parallel.Mem.counters t).Oasis.Engine.columns;
                  if k = 1 then begin
                    if not (same_stream hits ref_hits) then
                      failwith
                        (Printf.sprintf
                           "scaling: 1-shard stream not bit-identical on %s"
                           (Bioseq.Sequence.id query))
                  end
                  else begin
                    if not (nonincreasing hits) then
                      failwith
                        (Printf.sprintf
                           "scaling: %d-shard stream not score-ordered on %s" k
                           (Bioseq.Sequence.id query));
                    if canon hits <> canon ref_hits then
                      failwith
                        (Printf.sprintf
                           "scaling: %d-shard hits diverged on %s" k
                           (Bioseq.Sequence.id query))
                  end)
                jobs ref_streams)
        in
        Oasis.Domain_pool.shutdown pool;
        (k, wall, !columns))
      shard_counts
  in
  Printf.printf "  hit streams match the plain engine at every shard count\n";
  let base_wall = match rows with (_, w, _) :: _ -> w | [] -> nan in
  Printf.printf "  %8s %12s %16s %10s\n" "shards" "wall(ms)" "columns/s"
    "speedup";
  List.iter
    (fun (k, wall, columns) ->
      Printf.printf "  %8d %12.1f %16.0f %9.2fx\n" k (1000. *. wall)
        (float_of_int columns /. max 1e-9 wall)
        (base_wall /. wall))
    rows;
  (* Smoke gate for CI: on a multicore machine two shards must beat
     one. On a single core the domain overhead makes this impossible,
     so the gate is core-count-aware rather than silently green. *)
  let speedup_at k =
    match List.find_opt (fun (k', _, _) -> k' = k) rows with
    | Some (_, wall, _) -> base_wall /. wall
    | None -> nan
  in
  if cores >= 2 then begin
    let s2 = speedup_at 2 in
    if not (s2 > 1.0) then
      failwith
        (Printf.sprintf
           "scaling: expected >1.0x speedup on 2 shards with %d cores, got \
            %.2fx"
           cores s2)
  end
  else
    Printf.printf
      "  (single core: skipping the speedup > 1.0 assertion, recording \
       honest numbers)\n";
  let row_json (k, wall, columns) =
    Printf.sprintf
      "    \"shards_%d\": {\n\
      \      \"wall_s\": %.6f,\n\
      \      \"columns\": %d,\n\
      \      \"columns_per_sec\": %.1f,\n\
      \      \"speedup\": %.3f\n\
      \    }"
      k wall columns
      (float_of_int columns /. max 1e-9 wall)
      (base_wall /. wall)
  in
  update_bench_section "scaling"
    (Printf.sprintf
       "{\n\
       \    \"quick\": %b,\n\
       \    \"db_symbols\": %d,\n\
       \    \"queries\": %d,\n\
       \    \"seed\": %d,\n\
       \    \"cores\": %d,\n\
       \    \"hit_streams_match\": true,\n\
        %s,\n\
       \    \"speedup_at_4\": %.3f\n\
       \  }"
       quick db_symbols (List.length jobs) seed cores
       (String.concat ",\n" (List.map row_json rows))
       (speedup_at 4))

(* ------------------------------------------------------------------ *)
(* Incremental: the crash-safe log-structured index (append, recovery,  *)
(* merged search over {segments ∪ tail}).                               *)
(* ------------------------------------------------------------------ *)

(* Runs over the in-memory Vfs backend, so the numbers isolate the CPU
   cost of the log-structured machinery (journaling, CRCs, tail-tree
   maintenance, the k-way merge) from device latency — consistent with
   the harness's counted-I/O philosophy. The hit-stream gate against
   the monolithic engine is a hard failure. *)
let incremental setup =
  print_endline
    "== Incremental: log-structured index (append / recovery / merged \
     search)";
  let alphabet = Bioseq.Database.alphabet setup.db in
  let all_seqs =
    List.init (Bioseq.Database.num_sequences setup.db)
      (Bioseq.Database.seq setup.db)
  in
  let total_symbols = Bioseq.Database.total_symbols setup.db in
  let num_batches = 16 in
  let per_batch =
    (List.length all_seqs + num_batches - 1) / num_batches
  in
  let batches =
    let rec cut acc = function
      | [] -> List.rev acc
      | rest ->
        let batch = List.filteri (fun i _ -> i < per_batch) rest in
        let rest' = List.filteri (fun i _ -> i >= per_batch) rest in
        cut (batch :: acc) rest'
    in
    cut [] all_seqs
  in
  let store = Storage.Vfs.store () in
  let fs = Storage.Vfs.of_store store in
  let t = Storage.Live_index.create ~alphabet fs in
  (* Append throughput: every batch journaled + indexed into the tail,
     with a compaction after every fourth batch so the final index is a
     genuine {segments ∪ tail} mix. *)
  let (), append_wall =
    time (fun () ->
        List.iteri
          (fun i batch ->
            Storage.Live_index.append t batch;
            if (i + 1) mod 4 = 0 && i + 1 < List.length batches then
              Storage.Live_index.compact t)
          batches)
  in
  let segments = List.length (Storage.Live_index.segments t) in
  let tail = Storage.Live_index.tail_sequences t in
  Printf.printf
    "  append: %d sequences (%d symbols) in %d batches -> %.2fs (%.0f \
     symbols/sec), %d segments + %d tail sequences\n"
    (List.length all_seqs) total_symbols (List.length batches) append_wall
    (float_of_int total_symbols /. max 1e-9 append_wall)
    segments tail;
  Storage.Live_index.close t;
  (* Recovery-on-open: catalog load, segment footer verification,
     journal scan and tail replay. *)
  let (t, recovery), reopen_wall =
    time (fun () -> Storage.Live_index.open_ ~alphabet fs)
  in
  if recovery.Storage.Live_index.truncated <> Storage.Segment_log.Sealed then
    failwith "incremental: clean journal reported torn on reopen";
  Printf.printf "  reopen: %.3fs (%d journal records replayed)\n" reopen_wall
    recovery.Storage.Live_index.replayed;
  (* Merged search vs the monolithic in-memory engine: same (sequence,
     score) multisets, both streams non-increasing. *)
  let queries =
    List.concat_map
      (fun len ->
        List.init
          (min 3 queries_per_length)
          (fun i ->
            make_query setup ~len ~id:(Printf.sprintf "inc%d_%d" len i)))
      [ 8; 12; 16; 26 ]
  in
  let jobs =
    List.map (fun q -> (q, min_score_for setup ~query:q ~evalue:20000.)) queries
  in
  let canon hits =
    List.sort compare
      (List.map (fun h -> (h.Oasis.Hit.seq_index, h.Oasis.Hit.score)) hits)
  in
  let nonincreasing hits =
    let rec go = function
      | (a : Oasis.Hit.t) :: (b :: _ as rest) ->
        a.Oasis.Hit.score >= b.Oasis.Hit.score && go rest
      | _ -> true
    in
    go hits
  in
  let mono_hits, mono_wall =
    time (fun () ->
        List.map
          (fun (query, min_score) ->
            let cfg =
              Oasis.Engine.config ~matrix:setup.matrix ~gap:setup.gap
                ~min_score ()
            in
            Oasis.Engine.Mem.run
              (Oasis.Engine.Mem.create ~source:setup.tree ~db:setup.db ~query
                 cfg))
          jobs)
  in
  let snap = Storage.Live_index.snapshot t in
  let parts = Oasis.Multi.parts_of_snapshot snap in
  let merged_hits, merged_wall =
    time (fun () ->
        List.map
          (fun (query, min_score) ->
            let cfg =
              Oasis.Engine.config ~matrix:setup.matrix ~gap:setup.gap
                ~min_score ()
            in
            Oasis.Multi.run (Oasis.Multi.create ~parts ~query cfg))
          jobs)
  in
  List.iteri
    (fun i (merged, mono) ->
      let query, _ = List.nth jobs i in
      if not (nonincreasing merged) then
        failwith
          (Printf.sprintf "incremental: merged stream not score-ordered on %s"
             (Bioseq.Sequence.id query));
      if canon merged <> canon mono then
        failwith
          (Printf.sprintf
             "incremental: merged {segments ∪ tail} hits diverge from the \
              monolithic engine on %s"
             (Bioseq.Sequence.id query)))
    (List.combine merged_hits mono_hits);
  Storage.Live_index.release t snap;
  Storage.Live_index.close t;
  Printf.printf
    "  search: %d queries, merged %.2fs vs monolithic %.2fs (x%.2f), \
     streams match\n"
    (List.length jobs) merged_wall mono_wall
    (merged_wall /. max 1e-9 mono_wall);
  update_bench_section "incremental"
    (Printf.sprintf
       "{\n\
       \    \"quick\": %b,\n\
       \    \"db_symbols\": %d,\n\
       \    \"batches\": %d,\n\
       \    \"seed\": %d,\n\
       \    \"hit_streams_match\": true,\n\
       \    \"append\": { \"wall_s\": %.6f, \"symbols_per_sec\": %.1f, \
        \"segments\": %d, \"tail_sequences\": %d },\n\
       \    \"reopen\": { \"wall_s\": %.6f, \"records_replayed\": %d },\n\
       \    \"search\": { \"queries\": %d, \"merged_wall_s\": %.6f, \
        \"mono_wall_s\": %.6f, \"merged_vs_mono\": %.3f }\n\
       \  }"
       quick db_symbols (List.length batches) seed append_wall
       (float_of_int total_symbols /. max 1e-9 append_wall)
       segments tail reopen_wall recovery.Storage.Live_index.replayed
       (List.length jobs) merged_wall mono_wall
       (merged_wall /. max 1e-9 mono_wall))

(* ------------------------------------------------------------------ *)
(* Serve: the daemon's request path — an in-process server on a real   *)
(* Unix-domain socket, measuring per-request latency (framing + socket *)
(* + session reuse on top of the engine) and checking the streamed     *)
(* hits stay bit-identical to a direct engine run.                     *)
(* ------------------------------------------------------------------ *)

let serve_exp setup =
  print_endline
    "== Serve: daemon request latency over a Unix-domain socket (E=100 \
     protein workload)";
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "oasis-bench-%d.sock" (Unix.getpid ())) in
  let workers = 4 in
  let cfg =
    Serve.Server.config ~workers ~queue_depth:64
      ~alphabet:Bioseq.Alphabet.protein ~socket_path:path ()
  in
  let server =
    Serve.Server.create cfg ~make_worker:(fun _ ->
        Serve.Backend.mem ~tree:setup.tree ~db:setup.db ())
  in
  let daemon = Domain.spawn (fun () -> Serve.Server.run server) in
  let deadline = Unix.gettimeofday () +. 10. in
  let rec wait_up () =
    match Serve.Client.request ~path Serve.Protocol.Ping with
    | Ok Serve.Protocol.Pong -> ()
    | _ | (exception Unix.Unix_error _) ->
      if Unix.gettimeofday () > deadline then
        failwith "serve bench: daemon did not come up"
      else begin
        Unix.sleepf 0.02;
        wait_up ()
      end
  in
  wait_up ();
  Fun.protect
    ~finally:(fun () ->
      Serve.Server.stop server;
      Domain.join daemon)
  @@ fun () ->
  let jobs = scored_jobs ~evalue:100. setup in
  let wire_of (query, min_score) =
    {
      Serve.Protocol.query = Bioseq.Sequence.to_string query;
      matrix = Scoring.Submat.name setup.matrix;
      gap = Serve.Protocol.Linear { penalty = 10 };
      min_score;
      max_hits = None;
      max_columns = None;
      max_expanded = None;
      time_limit = None;
      seed_cutoff = false;
    }
  in
  let daemon_stream job =
    let hits = ref [] in
    match
      Serve.Client.search ~path
        ~on_hit:(fun _ (h : Serve.Protocol.hit) ->
          hits := (h.seq_index, h.score, h.query_stop, h.target_stop) :: !hits)
        (wire_of job)
    with
    | Serve.Client.Finished _ -> List.rev !hits
    | _ -> failwith "serve bench: search did not finish"
  in
  (* Correctness gate first, unmeasured: every daemon stream must be
     bit-identical to a direct engine run of the same request. *)
  List.iter
    (fun ((query, min_score) as job) ->
      let cfg =
        Oasis.Engine.config ~matrix:setup.matrix ~gap:setup.gap ~min_score ()
      in
      let engine =
        Oasis.Engine.Mem.create ~source:setup.tree ~db:setup.db ~query cfg
      in
      let direct =
        List.map
          (fun (h : Oasis.Hit.t) ->
            (h.seq_index, h.score, h.query_stop, h.target_stop))
          (Oasis.Engine.Mem.run engine)
      in
      if daemon_stream job <> direct then
        failwith
          (Printf.sprintf "serve bench: daemon stream diverged on %s"
             (Bioseq.Sequence.id query)))
    jobs;
  Printf.printf "  hit streams identical on all %d requests\n%!"
    (List.length jobs);
  (* Sequential latency: one request at a time, client-measured. *)
  let reps = if quick then 1 else 3 in
  let lat_us = ref [] in
  let _, seq_wall =
    time (fun () ->
        for _ = 1 to reps do
          List.iter
            (fun job ->
              let t0 = Unix.gettimeofday () in
              ignore (daemon_stream job);
              lat_us :=
                ((Unix.gettimeofday () -. t0) *. 1e6) :: !lat_us)
            jobs
        done)
  in
  let lat = Array.of_list !lat_us in
  Array.sort compare lat;
  let q p = lat.(min (Array.length lat - 1) (int_of_float (p *. float_of_int (Array.length lat)))) in
  let n_seq = Array.length lat in
  let seq_rps = float_of_int n_seq /. max 1e-9 seq_wall in
  Printf.printf
    "  sequential: %d requests, p50 %.0f us, p99 %.0f us, %.0f req/s\n%!"
    n_seq (q 0.5) (q 0.99) seq_rps;
  (* Concurrent: one client domain per worker, same jobs each. *)
  let clients = workers in
  let _, conc_wall =
    time (fun () ->
        let ds =
          List.init clients (fun _ ->
              Domain.spawn (fun () ->
                  List.iter (fun job -> ignore (daemon_stream job)) jobs))
        in
        List.iter Domain.join ds)
  in
  let n_conc = clients * List.length jobs in
  let conc_rps = float_of_int n_conc /. max 1e-9 conc_wall in
  Printf.printf "  concurrent (%d clients): %d requests, %.0f req/s (x%.2f)\n%!"
    clients n_conc conc_rps
    (conc_rps /. max 1e-9 seq_rps);
  (* The server's own SLO view, for cross-checking the client numbers. *)
  let server_p50, server_p99 =
    match Serve.Client.request ~path Serve.Protocol.Stats with
    | Ok (Serve.Protocol.Stats_reply items) ->
      ( (try List.assoc "serve.latency_us_p50" items with Not_found -> -1),
        try List.assoc "serve.latency_us_p99" items with Not_found -> -1 )
    | _ -> (-1, -1)
  in
  update_bench_section "serve"
    (Printf.sprintf
       "{\n\
       \    \"quick\": %b,\n\
       \    \"db_symbols\": %d,\n\
       \    \"workers\": %d,\n\
       \    \"hit_streams_identical\": true,\n\
       \    \"sequential\": { \"requests\": %d, \"latency_us_p50\": %.0f, \
        \"latency_us_p99\": %.0f, \"requests_per_sec\": %.1f },\n\
       \    \"concurrent\": { \"clients\": %d, \"requests\": %d, \
        \"requests_per_sec\": %.1f, \"speedup_vs_sequential\": %.3f },\n\
       \    \"server_slo\": { \"latency_us_p50\": %d, \"latency_us_p99\": %d }\n\
       \  }"
       quick
       (Bioseq.Database.total_symbols setup.db)
       workers n_seq (q 0.5) (q 0.99) seq_rps clients n_conc conc_rps
       (conc_rps /. max 1e-9 seq_rps)
       server_p50 server_p99)

(* ------------------------------------------------------------------ *)
(* Driver.                                                              *)
(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("table2", table2);
    ("space", space);
    ("fig3", fig3);
    ("fig4", fig4);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("fig9", fig9);
    ("ablation", ablation);
    ("longq", longq);
    ("affine", affine);
    ("dna", dna);
    ("quasar", quasar_exp);
    ("layout", layout_exp);
    ("edit", edit_exp);
    ("parallel", parallel_exp);
    ("micro", micro);
    ("kernel", kernel);
    ("obs", obs_exp);
    ("filter", filter_exp);
    ("disk", disk_exp);
    ("batch", batch_exp);
    ("scaling", scaling);
    ("incremental", incremental);
    ("serve", serve_exp);
  ]

let () =
  let requested =
    match
      List.filter
        (fun a ->
          a <> "--quick"
          && not (String.length a >= 9 && String.sub a 0 9 = "--suffix="))
        (List.tl (Array.to_list Sys.argv))
    with
    | [] -> if quick then [ "kernel" ] else List.map fst experiments
    | names -> names
  in
  let unknown =
    List.filter (fun n -> not (List.mem_assoc n experiments)) requested
  in
  if unknown <> [] then begin
    Printf.eprintf "unknown experiment(s): %s\navailable: %s\n"
      (String.concat ", " unknown)
      (String.concat ", " (List.map fst experiments));
    exit 1
  end;
  let setup = make_setup () in
  List.iter (fun name -> (List.assoc name experiments) setup) requested
